#include "core/programmable_switch.hh"

#include <bit>
#include <utility>

#include "net/packet_pool.hh"

namespace isw::core {

ProgrammableSwitch::ProgrammableSwitch(sim::Simulation &s, std::string name,
                                       std::size_t num_ports,
                                       ProgrammableSwitchConfig cfg)
    : net::EthSwitch(s, std::move(name), num_ports, cfg.base), cfg_(cfg),
      accel_(s, cfg.accel),
      ctrl_(ControlPlane::Hooks{
          .send_control =
              [this](const Member &m, net::ControlPayload msg) {
                  sendControlTo(m, std::move(msg));
              },
          .reset_accel =
              [this] {
                  accel_.reset();
                  result_cache_.clear();
              },
          .set_threshold =
              [this](std::uint32_t h) {
                  manual_threshold_ = true;
                  accel_.setThreshold(h);
              },
          .force_broadcast =
              [this](std::uint64_t key) { accel_.forceEmit(key); },
          .resend_cached =
              [this](std::uint64_t request, const Member &req) {
                  const std::uint64_t key =
                      packSegWord(helpSeg(request), req.job);
                  const std::uint64_t want = helpSeq(request);
                  auto it = result_cache_.find(key);
                  if (it == result_cache_.end() ||
                      (want != 0 && it->second.seq != want)) {
                      return false; // wanted completion hasn't happened
                  }
                  sendResultTo(req, key, it->second);
                  return true;
              },
          .clear_segment =
              [this](std::uint64_t key) {
                  // A promoted backup keeps the replicated partial:
                  // state frames carry the full contributor set, so
                  // deduped retransmissions fold in exactly the
                  // missing contributions (DESIGN.md §16).
                  if (ha_promoted_ && accel_.pool().has(key) &&
                      accel_.dedupeFor(segWordJob(key)))
                      return;
                  if (accel_.pool().has(key))
                      (void)accel_.harvestPartial(key);
              },
          .membership_changed = [this] { refreshThreshold(); },
          .member_left =
              [this](const Member &m) {
                  // Reclaim the leaver's in-flight partials so a
                  // crashed worker can't pin aggregator slots (and
                  // inflate peak occupancy) until round end.
                  const std::size_t n = accel_.reclaimFrom(m.ip.bits());
                  if (n != 0)
                      counters_.reclaimed.inc(n);
              },
          .heartbeat =
              [this](net::Ipv4Addr) {
                  if (ha_backup_)
                      ha_monitor_.beat(sim_.now());
              },
          .failover = [this] { adoptFailoverUplink(); },
      }),
      mac_(net::MacAddr(0x02EE'0000'0000ULL | cfg.ip.bits())),
      counters_{
          s.stats().counter("iswitch." + this->name() + ".data_in"),
          s.stats().counter("iswitch." + this->name() + ".ctrl_in"),
          s.stats().counter("iswitch." + this->name() + ".segs_done"),
          s.stats().counter("iswitch." + this->name() + ".nacks"),
          s.stats().counter("iswitch." + this->name() + ".reclaimed"),
      }
{
    accel_.setEmit([this](std::uint64_t key, SegState sum) {
        onEmit(key, std::move(sum));
    });
    accel_.setNack(
        [this](std::uint8_t job, std::uint64_t seg, std::uint32_t src) {
            sendNack(job, seg, src);
        });
}

void
ProgrammableSwitch::adminJoin(net::Ipv4Addr ip, std::uint16_t udp_port,
                              MemberType type, std::uint8_t job)
{
    ctrl_.table().join(ip, udp_port, type, job);
    refreshThreshold();
}

void
ProgrammableSwitch::setManualThreshold(std::uint32_t h)
{
    manual_threshold_ = true;
    accel_.setThreshold(h);
}

void
ProgrammableSwitch::refreshThreshold()
{
    if (manual_threshold_)
        return;
    // Auto-H per job: each job's threshold tracks its own member count
    // (with one job this is exactly the original H = table size).
    std::unordered_map<std::uint8_t, std::uint32_t> per_job;
    for (const Member &m : ctrl_.table().members())
        ++per_job[m.job];
    auto it0 = per_job.find(0);
    accel_.setThreshold(it0 == per_job.end() ? 1 : it0->second);
    for (const auto &[job, n] : per_job) {
        if (job != 0)
            accel_.setJobThreshold(job, n);
    }
}

bool
ProgrammableSwitch::interceptIngress(const net::PacketPtr &pkt,
                                     std::size_t in_port)
{
    (void)in_port;
    switch (pkt->ip.tos) {
      case net::kTosData: {
        // Contribution plane: aggregate regardless of addressing;
        // every iSwitch hop on the path folds tagged gradients in.
        if (const auto *chunk =
                std::get_if<net::ChunkPayload>(&pkt->payload)) {
            // Promoted backup: a contribution for a segment whose
            // result already replicated means the round completed on
            // the failed primary but the downward broadcast died with
            // it — the contributor's whole subtree re-aggregated and
            // is waiting. Re-serve the cached result instead of
            // folding a duplicate round into the pool.
            if (ha_promoted_) {
                const std::uint64_t key =
                    packSegWord(chunk->seg, chunk->job);
                const auto it = result_cache_.find(key);
                if (it != result_cache_.end()) {
                    const auto m = ctrl_.table().find(pkt->ip.src);
                    if (m)
                        sendResultTo(*m, key, it->second);
                    return true;
                }
            }
            accel_.ingest(pkt);
            counters_.data_in.inc();
        }
        return true;
      }
      case net::kTosControl: {
        if (pkt->ip.dst == cfg_.ip) {
            onControl(pkt);
            return true;
        }
        return false; // control for someone else: regular forwarding
      }
      case net::kTosResult: {
        if (pkt->ip.dst == cfg_.ip) {
            onResult(pkt);
            return true;
        }
        return false; // worker-addressed result: forward normally
      }
      case net::kTosRepl: {
        if (pkt->ip.dst == cfg_.ip) {
            onRepl(pkt);
            return true;
        }
        return false; // replication for someone else: forward
      }
      default:
        return false;
    }
}

void
ProgrammableSwitch::onControl(const net::PacketPtr &pkt)
{
    if (const auto *c = std::get_if<net::ControlPayload>(&pkt->payload)) {
        counters_.ctrl_in.inc();
        ctrl_.handle(pkt->ip.src, pkt->udp.src_port, *c);
        // HA primary: mirror membership events to the backup so its
        // table (and auto-H) tracks ours. Duplicate Joins mirror too —
        // the backup's join() is idempotent, like ours.
        if (ha_primary_ && (c->action == net::Action::kJoin ||
                            c->action == net::Action::kLeave)) {
            const std::uint64_t jv =
                c->action == net::Action::kJoin
                    ? (c->has_value
                           ? c->value
                           : encodeJoinValue(pkt->udp.src_port,
                                             MemberType::kWorker))
                    : 0;
            repl_->onMembership(c->action, pkt->ip.src.bits(), jv);
        }
    }
}

void
ProgrammableSwitch::onResult(const net::PacketPtr &pkt)
{
    // A result from our parent: cache and fan out to our members.
    if (const auto *chunk = std::get_if<net::ChunkPayload>(&pkt->payload)) {
        const std::uint64_t key = packSegWord(chunk->seg, chunk->job);
        CachedResult res{chunk->values, chunk->wire_floats, 0,
                         ++seg_completions_[key], chunk->prec, chunk->qexp};
        broadcastResult(key, res);
        result_cache_[key] = std::move(res);
        pruneCache(key);
    }
}

void
ProgrammableSwitch::pruneCache(std::uint64_t latest_key)
{
    const std::uint8_t job = segWordJob(latest_key);
    std::uint64_t &job_max = max_seg_seen_[job];
    job_max = std::max(job_max, segWordIndex(latest_key));
    // Amortized: sweep only once the cache doubles past its window, so
    // the scan cost spreads over `cache_window` insertions.
    if (job_max < cfg_.cache_window ||
        result_cache_.size() < 2 * cfg_.cache_window)
        return;
    // Evict per job: one job's fast progress must not flush another's
    // still-needed results.
    const auto stale = [this](std::uint64_t key) {
        const auto it = max_seg_seen_.find(segWordJob(key));
        if (it == max_seg_seen_.end() || it->second < cfg_.cache_window)
            return false;
        return segWordIndex(key) < it->second - cfg_.cache_window;
    };
    std::erase_if(result_cache_,
                  [&stale](const auto &kv) { return stale(kv.first); });
    std::erase_if(seg_completions_,
                  [&stale](const auto &kv) { return stale(kv.first); });
}

void
ProgrammableSwitch::onEmit(std::uint64_t key, SegState sum)
{
    counters_.segs_done.inc();
    if (!isRoot()) {
        // Forward the partial aggregate upward as a new contribution.
        net::Packet pkt;
        pkt.eth.src = mac_;
        pkt.ip.src = cfg_.ip;
        pkt.ip.dst = cfg_.parent;
        pkt.ip.tos = net::kTosData;
        pkt.udp.src_port = cfg_.udp_port;
        pkt.udp.dst_port = cfg_.parent_port;
        net::ChunkPayload chunk;
        chunk.seg = segWordIndex(key);
        chunk.job = segWordJob(key);
        chunk.wire_floats = sum.wire_floats;
        chunk.prec = sum.prec;
        chunk.qexp = sum.qexp;
        chunk.values = std::move(sum.acc);
        pkt.payload = std::move(chunk);
        forward(net::makePacket(std::move(pkt)));
        return;
    }
    CachedResult res{std::move(sum.acc), sum.wire_floats, sum.count,
                     ++seg_completions_[key], sum.prec, sum.qexp};
    broadcastResult(key, res);
    // HA primary: completions replicate via the result path (the
    // backup installs the result cache entry and drops any partial
    // replica — its pool never holds completed segments).
    if (ha_primary_)
        repl_->onResult(key, res.values, res.wire_floats, res.count,
                        res.seq, res.prec, res.qexp);
    result_cache_[key] = std::move(res);
    pruneCache(key);
}

void
ProgrammableSwitch::broadcastResult(std::uint64_t key,
                                    const CachedResult &res)
{
    // Results fan out only to the owning job's members; downstream
    // switches (kSwitch rows) always receive them for further fan-out.
    const std::uint8_t job = segWordJob(key);
    for (const Member &m : ctrl_.table().members()) {
        if (m.job == job || m.type == MemberType::kSwitch)
            sendResultTo(m, key, res);
    }
}

void
ProgrammableSwitch::sendResultTo(const Member &m, std::uint64_t key,
                                 const CachedResult &res)
{
    net::Packet pkt;
    pkt.eth.src = mac_;
    pkt.ip.src = cfg_.ip;
    pkt.ip.dst = m.ip;
    pkt.ip.tos = net::kTosResult;
    pkt.udp.src_port = cfg_.udp_port;
    pkt.udp.dst_port = m.udp_port;
    net::ChunkPayload chunk;
    chunk.seg = segWordIndex(key);
    chunk.job = segWordJob(key);
    chunk.wire_floats = res.wire_floats;
    chunk.prec = res.prec;
    chunk.qexp = res.qexp;
    chunk.values = net::PacketPool::local().acquireFloats(res.values.size());
    chunk.values.assign(res.values.begin(), res.values.end());
    pkt.payload = std::move(chunk);
    forward(net::makePacket(std::move(pkt)));
}

void
ProgrammableSwitch::sendNack(std::uint8_t job, std::uint64_t seg,
                             std::uint32_t src)
{
    const auto m = ctrl_.table().find(net::Ipv4Addr(src));
    if (!m)
        return; // unknown contributor: nothing to tell
    net::ControlPayload msg;
    msg.action = net::Action::kNack;
    msg.has_value = true;
    msg.value = packSegWord(seg, job);
    counters_.nacks.inc();
    sendControlTo(*m, msg);
}

void
ProgrammableSwitch::sendControlTo(const Member &m, net::ControlPayload msg)
{
    net::Packet pkt;
    pkt.eth.src = mac_;
    pkt.ip.src = cfg_.ip;
    pkt.ip.dst = m.ip;
    pkt.ip.tos = net::kTosControl;
    pkt.udp.src_port = cfg_.udp_port;
    pkt.udp.dst_port = m.udp_port;
    pkt.payload = msg;
    forward(net::makePacket(std::move(pkt)));
}

void
ProgrammableSwitch::enableHaPrimary(net::Ipv4Addr backup_ip,
                                    std::uint16_t backup_port,
                                    ReplicationConfig repl)
{
    ha_primary_ = true;
    ha_peer_ip_ = backup_ip;
    ha_peer_port_ = backup_port;
    repl_ = std::make_unique<ReplicatedAccelerator>(
        sim_, accel_, repl,
        [this](net::Payload p) { sendReplPayload(std::move(p)); });
    accel_.setAccept([this](std::uint64_t key) { repl_->onAccept(key); });
}

void
ProgrammableSwitch::enableHaBackup(sim::TimeNs heartbeat_period,
                                   std::uint32_t miss_threshold)
{
    ha_backup_ = true;
    ha_monitor_.configure(heartbeat_period, miss_threshold, sim_.now());
}

void
ProgrammableSwitch::setFailoverUplink(net::Ipv4Addr new_parent,
                                      std::size_t port)
{
    ha_has_failover_uplink_ = true;
    ha_failover_parent_ = new_parent;
    ha_failover_port_ = port;
}

void
ProgrammableSwitch::haBeat()
{
    if (!ha_primary_)
        return;
    repl_->pump();
    net::Packet pkt;
    pkt.eth.src = mac_;
    pkt.ip.src = cfg_.ip;
    pkt.ip.dst = ha_peer_ip_;
    pkt.ip.tos = net::kTosControl;
    pkt.udp.src_port = cfg_.udp_port;
    pkt.udp.dst_port = ha_peer_port_;
    net::ControlPayload hb;
    hb.action = net::Action::kHeartbeat;
    pkt.payload = hb;
    forward(net::makePacket(std::move(pkt)));
}

bool
ProgrammableSwitch::haCheckPeer()
{
    if (!ha_backup_ || ha_promoted_)
        return false;
    if (ha_monitor_.check(sim_.now()) != HeartbeatMonitor::State::kDead)
        return false;
    promote();
    return true;
}

void
ProgrammableSwitch::promote()
{
    // Fail-stop promotion: once dead, the primary stays dead (no
    // failback, no split-brain — the fault model drops every frame the
    // old primary could send, and plans that rejoin it are rejected by
    // the harness for HA runs).
    ha_promoted_ = true;
    ha_promote_time_ = sim_.now();
    net::ControlPayload fo;
    fo.action = net::Action::kFailover;
    for (const Member &m : ctrl_.table().members())
        sendControlTo(m, fo);
}

void
ProgrammableSwitch::adoptFailoverUplink()
{
    if (!ha_has_failover_uplink_ || ha_failed_over_)
        return; // not wired for failover, or already flipped
    ha_failed_over_ = true;
    cfg_.parent = ha_failover_parent_;
    setDefaultPort(ha_failover_port_);
}

void
ProgrammableSwitch::sendReplPayload(net::Payload payload)
{
    net::Packet pkt;
    pkt.eth.src = mac_;
    pkt.ip.src = cfg_.ip;
    pkt.ip.dst = ha_peer_ip_;
    pkt.ip.tos = net::kTosRepl;
    pkt.udp.src_port = cfg_.udp_port;
    pkt.udp.dst_port = ha_peer_port_;
    pkt.payload = std::move(payload);
    forward(net::makePacket(std::move(pkt)));
}

void
ProgrammableSwitch::onRepl(const net::PacketPtr &pkt)
{
    if (const auto *c = std::get_if<net::ControlPayload>(&pkt->payload)) {
        // Mirrored membership event. Applied straight to the table —
        // not through ControlPlane::handle — so no acks flow and the
        // mirrored event can carry the member's IP instead of the
        // frame's source address.
        const net::Ipv4Addr mip(replMemberIp(c->value));
        if (c->action == net::Action::kJoin) {
            const std::uint64_t jv = replMemberJoinValue(c->value);
            ctrl_.table().join(mip, joinValuePort(jv), joinValueType(jv),
                               joinValueJob(jv));
            refreshThreshold();
        } else if (c->action == net::Action::kLeave) {
            if (ctrl_.table().leave(mip)) {
                const std::size_t n = accel_.reclaimFrom(mip.bits());
                if (n != 0)
                    counters_.reclaimed.inc(n);
                refreshThreshold();
            }
        }
        ++ha_members_applied_;
        return;
    }
    const auto *chunk = std::get_if<net::ChunkPayload>(&pkt->payload);
    if (chunk == nullptr)
        return;
    const std::uint64_t key = packSegWord(chunk->seg, chunk->job);
    if ((chunk->transfer_id & kReplResultBit) != 0) {
        // Completed result: install in the cache, advance the
        // completion floor, and drop any partial replica — the pool
        // must never hold a completed segment.
        const std::uint64_t seq = replResultSeq(chunk->transfer_id);
        CachedResult res{chunk->values, chunk->wire_floats,
                         replCount(chunk->transfer_id), seq, chunk->prec,
                         chunk->qexp};
        std::uint64_t &floor = seg_completions_[key];
        floor = std::max(floor, seq);
        if (accel_.pool().has(key))
            (void)accel_.harvestPartial(key);
        result_cache_[key] = std::move(res);
        pruneCache(key);
        ++ha_results_applied_;
        return;
    }
    // State frame: rebuild the segment replica wholesale (replace
    // semantics — see replication.hh). The contributor set rides after
    // the accumulator words.
    SegState st;
    const std::uint32_t nc = replContributors(chunk->transfer_id);
    st.count = replCount(chunk->transfer_id);
    st.wire_floats = chunk->wire_floats;
    st.prec = chunk->prec;
    st.qexp = chunk->qexp;
    const std::size_t accn = chunk->values.size() - nc;
    st.acc.assign(chunk->values.begin(),
                  chunk->values.begin() + static_cast<std::ptrdiff_t>(accn));
    for (std::size_t i = 0; i < nc; ++i)
        st.contributors.insert(
            std::bit_cast<std::uint32_t>(chunk->values[accn + i]));
    accel_.pool().installReplica(key, std::move(st));
    ++ha_state_applied_;
}

} // namespace isw::core
