#include "core/programmable_switch.hh"

#include <utility>

#include "net/packet_pool.hh"

namespace isw::core {

ProgrammableSwitch::ProgrammableSwitch(sim::Simulation &s, std::string name,
                                       std::size_t num_ports,
                                       ProgrammableSwitchConfig cfg)
    : net::EthSwitch(s, std::move(name), num_ports, cfg.base), cfg_(cfg),
      accel_(s, cfg.accel),
      ctrl_(ControlPlane::Hooks{
          .send_control =
              [this](const Member &m, net::ControlPayload msg) {
                  sendControlTo(m, std::move(msg));
              },
          .reset_accel =
              [this] {
                  accel_.reset();
                  result_cache_.clear();
              },
          .set_threshold =
              [this](std::uint32_t h) {
                  manual_threshold_ = true;
                  accel_.setThreshold(h);
              },
          .force_broadcast =
              [this](std::uint64_t key) { accel_.forceEmit(key); },
          .resend_cached =
              [this](std::uint64_t request, const Member &req) {
                  const std::uint64_t key =
                      packSegWord(helpSeg(request), req.job);
                  const std::uint64_t want = helpSeq(request);
                  auto it = result_cache_.find(key);
                  if (it == result_cache_.end() ||
                      (want != 0 && it->second.seq != want)) {
                      return false; // wanted completion hasn't happened
                  }
                  sendResultTo(req, key, it->second);
                  return true;
              },
          .clear_segment =
              [this](std::uint64_t key) {
                  if (accel_.pool().has(key))
                      (void)accel_.harvestPartial(key);
              },
          .membership_changed = [this] { refreshThreshold(); },
          .member_left =
              [this](const Member &m) {
                  // Reclaim the leaver's in-flight partials so a
                  // crashed worker can't pin aggregator slots (and
                  // inflate peak occupancy) until round end.
                  const std::size_t n = accel_.reclaimFrom(m.ip.bits());
                  if (n != 0)
                      counters_.reclaimed.inc(n);
              },
      }),
      mac_(net::MacAddr(0x02EE'0000'0000ULL | cfg.ip.bits())),
      counters_{
          s.stats().counter("iswitch." + this->name() + ".data_in"),
          s.stats().counter("iswitch." + this->name() + ".ctrl_in"),
          s.stats().counter("iswitch." + this->name() + ".segs_done"),
          s.stats().counter("iswitch." + this->name() + ".nacks"),
          s.stats().counter("iswitch." + this->name() + ".reclaimed"),
      }
{
    accel_.setEmit([this](std::uint64_t key, SegState sum) {
        onEmit(key, std::move(sum));
    });
    accel_.setNack(
        [this](std::uint8_t job, std::uint64_t seg, std::uint32_t src) {
            sendNack(job, seg, src);
        });
}

void
ProgrammableSwitch::adminJoin(net::Ipv4Addr ip, std::uint16_t udp_port,
                              MemberType type, std::uint8_t job)
{
    ctrl_.table().join(ip, udp_port, type, job);
    refreshThreshold();
}

void
ProgrammableSwitch::setManualThreshold(std::uint32_t h)
{
    manual_threshold_ = true;
    accel_.setThreshold(h);
}

void
ProgrammableSwitch::refreshThreshold()
{
    if (manual_threshold_)
        return;
    // Auto-H per job: each job's threshold tracks its own member count
    // (with one job this is exactly the original H = table size).
    std::unordered_map<std::uint8_t, std::uint32_t> per_job;
    for (const Member &m : ctrl_.table().members())
        ++per_job[m.job];
    auto it0 = per_job.find(0);
    accel_.setThreshold(it0 == per_job.end() ? 1 : it0->second);
    for (const auto &[job, n] : per_job) {
        if (job != 0)
            accel_.setJobThreshold(job, n);
    }
}

bool
ProgrammableSwitch::interceptIngress(const net::PacketPtr &pkt,
                                     std::size_t in_port)
{
    (void)in_port;
    switch (pkt->ip.tos) {
      case net::kTosData: {
        // Contribution plane: aggregate regardless of addressing;
        // every iSwitch hop on the path folds tagged gradients in.
        if (std::holds_alternative<net::ChunkPayload>(pkt->payload)) {
            accel_.ingest(pkt);
            counters_.data_in.inc();
        }
        return true;
      }
      case net::kTosControl: {
        if (pkt->ip.dst == cfg_.ip) {
            onControl(pkt);
            return true;
        }
        return false; // control for someone else: regular forwarding
      }
      case net::kTosResult: {
        if (pkt->ip.dst == cfg_.ip) {
            onResult(pkt);
            return true;
        }
        return false; // worker-addressed result: forward normally
      }
      default:
        return false;
    }
}

void
ProgrammableSwitch::onControl(const net::PacketPtr &pkt)
{
    if (const auto *c = std::get_if<net::ControlPayload>(&pkt->payload)) {
        counters_.ctrl_in.inc();
        ctrl_.handle(pkt->ip.src, pkt->udp.src_port, *c);
    }
}

void
ProgrammableSwitch::onResult(const net::PacketPtr &pkt)
{
    // A result from our parent: cache and fan out to our members.
    if (const auto *chunk = std::get_if<net::ChunkPayload>(&pkt->payload)) {
        const std::uint64_t key = packSegWord(chunk->seg, chunk->job);
        CachedResult res{chunk->values, chunk->wire_floats, 0,
                         ++seg_completions_[key], chunk->prec, chunk->qexp};
        broadcastResult(key, res);
        result_cache_[key] = std::move(res);
        pruneCache(key);
    }
}

void
ProgrammableSwitch::pruneCache(std::uint64_t latest_key)
{
    const std::uint8_t job = segWordJob(latest_key);
    std::uint64_t &job_max = max_seg_seen_[job];
    job_max = std::max(job_max, segWordIndex(latest_key));
    // Amortized: sweep only once the cache doubles past its window, so
    // the scan cost spreads over `cache_window` insertions.
    if (job_max < cfg_.cache_window ||
        result_cache_.size() < 2 * cfg_.cache_window)
        return;
    // Evict per job: one job's fast progress must not flush another's
    // still-needed results.
    const auto stale = [this](std::uint64_t key) {
        const auto it = max_seg_seen_.find(segWordJob(key));
        if (it == max_seg_seen_.end() || it->second < cfg_.cache_window)
            return false;
        return segWordIndex(key) < it->second - cfg_.cache_window;
    };
    std::erase_if(result_cache_,
                  [&stale](const auto &kv) { return stale(kv.first); });
    std::erase_if(seg_completions_,
                  [&stale](const auto &kv) { return stale(kv.first); });
}

void
ProgrammableSwitch::onEmit(std::uint64_t key, SegState sum)
{
    counters_.segs_done.inc();
    if (!isRoot()) {
        // Forward the partial aggregate upward as a new contribution.
        net::Packet pkt;
        pkt.eth.src = mac_;
        pkt.ip.src = cfg_.ip;
        pkt.ip.dst = cfg_.parent;
        pkt.ip.tos = net::kTosData;
        pkt.udp.src_port = cfg_.udp_port;
        pkt.udp.dst_port = cfg_.parent_port;
        net::ChunkPayload chunk;
        chunk.seg = segWordIndex(key);
        chunk.job = segWordJob(key);
        chunk.wire_floats = sum.wire_floats;
        chunk.prec = sum.prec;
        chunk.qexp = sum.qexp;
        chunk.values = std::move(sum.acc);
        pkt.payload = std::move(chunk);
        forward(net::makePacket(std::move(pkt)));
        return;
    }
    CachedResult res{std::move(sum.acc), sum.wire_floats, sum.count,
                     ++seg_completions_[key], sum.prec, sum.qexp};
    broadcastResult(key, res);
    result_cache_[key] = std::move(res);
    pruneCache(key);
}

void
ProgrammableSwitch::broadcastResult(std::uint64_t key,
                                    const CachedResult &res)
{
    // Results fan out only to the owning job's members; downstream
    // switches (kSwitch rows) always receive them for further fan-out.
    const std::uint8_t job = segWordJob(key);
    for (const Member &m : ctrl_.table().members()) {
        if (m.job == job || m.type == MemberType::kSwitch)
            sendResultTo(m, key, res);
    }
}

void
ProgrammableSwitch::sendResultTo(const Member &m, std::uint64_t key,
                                 const CachedResult &res)
{
    net::Packet pkt;
    pkt.eth.src = mac_;
    pkt.ip.src = cfg_.ip;
    pkt.ip.dst = m.ip;
    pkt.ip.tos = net::kTosResult;
    pkt.udp.src_port = cfg_.udp_port;
    pkt.udp.dst_port = m.udp_port;
    net::ChunkPayload chunk;
    chunk.seg = segWordIndex(key);
    chunk.job = segWordJob(key);
    chunk.wire_floats = res.wire_floats;
    chunk.prec = res.prec;
    chunk.qexp = res.qexp;
    chunk.values = net::PacketPool::local().acquireFloats(res.values.size());
    chunk.values.assign(res.values.begin(), res.values.end());
    pkt.payload = std::move(chunk);
    forward(net::makePacket(std::move(pkt)));
}

void
ProgrammableSwitch::sendNack(std::uint8_t job, std::uint64_t seg,
                             std::uint32_t src)
{
    const auto m = ctrl_.table().find(net::Ipv4Addr(src));
    if (!m)
        return; // unknown contributor: nothing to tell
    net::ControlPayload msg;
    msg.action = net::Action::kNack;
    msg.has_value = true;
    msg.value = packSegWord(seg, job);
    counters_.nacks.inc();
    sendControlTo(*m, msg);
}

void
ProgrammableSwitch::sendControlTo(const Member &m, net::ControlPayload msg)
{
    net::Packet pkt;
    pkt.eth.src = mac_;
    pkt.ip.src = cfg_.ip;
    pkt.ip.dst = m.ip;
    pkt.ip.tos = net::kTosControl;
    pkt.udp.src_port = cfg_.udp_port;
    pkt.udp.dst_port = m.udp_port;
    pkt.payload = msg;
    forward(net::makePacket(std::move(pkt)));
}

} // namespace isw::core
