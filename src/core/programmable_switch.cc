#include "core/programmable_switch.hh"

#include <utility>

#include "net/packet_pool.hh"

namespace isw::core {

ProgrammableSwitch::ProgrammableSwitch(sim::Simulation &s, std::string name,
                                       std::size_t num_ports,
                                       ProgrammableSwitchConfig cfg)
    : net::EthSwitch(s, std::move(name), num_ports, cfg.base), cfg_(cfg),
      accel_(s, cfg.accel),
      ctrl_(ControlPlane::Hooks{
          .send_control =
              [this](const Member &m, net::ControlPayload msg) {
                  sendControlTo(m, std::move(msg));
              },
          .reset_accel =
              [this] {
                  accel_.reset();
                  result_cache_.clear();
              },
          .set_threshold =
              [this](std::uint32_t h) {
                  manual_threshold_ = true;
                  accel_.setThreshold(h);
              },
          .force_broadcast =
              [this](std::uint64_t seg) { accel_.forceEmit(seg); },
          .resend_cached =
              [this](std::uint64_t request, const Member &req) {
                  const std::uint64_t seg = helpSeg(request);
                  const std::uint64_t want = helpSeq(request);
                  auto it = result_cache_.find(seg);
                  if (it == result_cache_.end() ||
                      (want != 0 && it->second.seq != want)) {
                      return false; // wanted completion hasn't happened
                  }
                  sendResultTo(req, seg, it->second);
                  return true;
              },
          .clear_segment =
              [this](std::uint64_t seg) {
                  if (accel_.pool().has(seg))
                      (void)accel_.harvestPartial(seg);
              },
          .membership_changed = [this] { refreshThreshold(); },
      }),
      mac_(net::MacAddr(0x02EE'0000'0000ULL | cfg.ip.bits()))
{
    accel_.setEmit([this](std::uint64_t seg, SegState sum) {
        onEmit(seg, std::move(sum));
    });
}

void
ProgrammableSwitch::adminJoin(net::Ipv4Addr ip, std::uint16_t udp_port,
                              MemberType type)
{
    ctrl_.table().join(ip, udp_port, type);
    refreshThreshold();
}

void
ProgrammableSwitch::setManualThreshold(std::uint32_t h)
{
    manual_threshold_ = true;
    accel_.setThreshold(h);
}

void
ProgrammableSwitch::refreshThreshold()
{
    if (manual_threshold_)
        return;
    const auto n = static_cast<std::uint32_t>(ctrl_.table().size());
    accel_.setThreshold(n == 0 ? 1 : n);
}

bool
ProgrammableSwitch::interceptIngress(const net::PacketPtr &pkt,
                                     std::size_t in_port)
{
    (void)in_port;
    switch (pkt->ip.tos) {
      case net::kTosData: {
        // Contribution plane: aggregate regardless of addressing;
        // every iSwitch hop on the path folds tagged gradients in.
        if (std::holds_alternative<net::ChunkPayload>(pkt->payload)) {
            accel_.ingest(pkt);
            sim_.stats().counter("iswitch." + name() + ".data_in").inc();
        }
        return true;
      }
      case net::kTosControl: {
        if (pkt->ip.dst == cfg_.ip) {
            onControl(pkt);
            return true;
        }
        return false; // control for someone else: regular forwarding
      }
      case net::kTosResult: {
        if (pkt->ip.dst == cfg_.ip) {
            onResult(pkt);
            return true;
        }
        return false; // worker-addressed result: forward normally
      }
      default:
        return false;
    }
}

void
ProgrammableSwitch::onControl(const net::PacketPtr &pkt)
{
    if (const auto *c = std::get_if<net::ControlPayload>(&pkt->payload)) {
        sim_.stats().counter("iswitch." + name() + ".ctrl_in").inc();
        ctrl_.handle(pkt->ip.src, pkt->udp.src_port, *c);
    }
}

void
ProgrammableSwitch::onResult(const net::PacketPtr &pkt)
{
    // A result from our parent: cache and fan out to our members.
    if (const auto *chunk = std::get_if<net::ChunkPayload>(&pkt->payload)) {
        CachedResult res{chunk->values, chunk->wire_floats, 0,
                         ++seg_completions_[chunk->seg]};
        broadcastResult(chunk->seg, res);
        result_cache_[chunk->seg] = std::move(res);
        pruneCache(chunk->seg);
    }
}

void
ProgrammableSwitch::pruneCache(std::uint64_t latest_seg)
{
    max_seg_seen_ = std::max(max_seg_seen_, latest_seg);
    // Amortized: sweep only once the cache doubles past its window, so
    // the scan cost spreads over `cache_window` insertions.
    if (max_seg_seen_ < cfg_.cache_window ||
        result_cache_.size() < 2 * cfg_.cache_window)
        return;
    const std::uint64_t floor = max_seg_seen_ - cfg_.cache_window;
    std::erase_if(result_cache_,
                  [floor](const auto &kv) { return kv.first < floor; });
    std::erase_if(seg_completions_,
                  [floor](const auto &kv) { return kv.first < floor; });
}

void
ProgrammableSwitch::onEmit(std::uint64_t seg, SegState sum)
{
    sim_.stats().counter("iswitch." + name() + ".segs_done").inc();
    if (!isRoot()) {
        // Forward the partial aggregate upward as a new contribution.
        net::Packet pkt;
        pkt.eth.src = mac_;
        pkt.ip.src = cfg_.ip;
        pkt.ip.dst = cfg_.parent;
        pkt.ip.tos = net::kTosData;
        pkt.udp.src_port = cfg_.udp_port;
        pkt.udp.dst_port = cfg_.parent_port;
        net::ChunkPayload chunk;
        chunk.seg = seg;
        chunk.wire_floats = sum.wire_floats;
        chunk.values = std::move(sum.acc);
        pkt.payload = std::move(chunk);
        forward(net::makePacket(std::move(pkt)));
        return;
    }
    CachedResult res{std::move(sum.acc), sum.wire_floats, sum.count,
                     ++seg_completions_[seg]};
    broadcastResult(seg, res);
    result_cache_[seg] = std::move(res);
    pruneCache(seg);
}

void
ProgrammableSwitch::broadcastResult(std::uint64_t seg,
                                    const CachedResult &res)
{
    for (const Member &m : ctrl_.table().members())
        sendResultTo(m, seg, res);
}

void
ProgrammableSwitch::sendResultTo(const Member &m, std::uint64_t seg,
                                 const CachedResult &res)
{
    net::Packet pkt;
    pkt.eth.src = mac_;
    pkt.ip.src = cfg_.ip;
    pkt.ip.dst = m.ip;
    pkt.ip.tos = net::kTosResult;
    pkt.udp.src_port = cfg_.udp_port;
    pkt.udp.dst_port = m.udp_port;
    net::ChunkPayload chunk;
    chunk.seg = seg;
    chunk.wire_floats = res.wire_floats;
    chunk.values = net::PacketPool::local().acquireFloats(res.values.size());
    chunk.values.assign(res.values.begin(), res.values.end());
    pkt.payload = std::move(chunk);
    forward(net::makePacket(std::move(pkt)));
}

void
ProgrammableSwitch::sendControlTo(const Member &m, net::ControlPayload msg)
{
    net::Packet pkt;
    pkt.eth.src = mac_;
    pkt.ip.src = cfg_.ip;
    pkt.ip.dst = m.ip;
    pkt.ip.tos = net::kTosControl;
    pkt.udp.src_port = cfg_.udp_port;
    pkt.udp.dst_port = m.udp_port;
    pkt.payload = msg;
    forward(net::makePacket(std::move(pkt)));
}

} // namespace isw::core
