#include "core/control.hh"

#include "core/protocol.hh"

namespace isw::core {

std::uint32_t
MembershipTable::join(net::Ipv4Addr ip, std::uint16_t udp_port,
                      MemberType type, std::uint8_t job, bool *changed)
{
    auto it = by_ip_.find(ip);
    if (it != by_ip_.end()) {
        Member &m = it->second;
        if (changed != nullptr)
            *changed = m.udp_port != udp_port || m.type != type ||
                       m.job != job;
        m.udp_port = udp_port;
        m.type = type;
        m.job = job;
        return m.id;
    }
    const std::uint32_t id = next_id_++;
    by_ip_[ip] = Member{id, ip, udp_port, type, job};
    by_id_[id] = ip;
    if (changed != nullptr)
        *changed = true;
    return id;
}

bool
MembershipTable::leave(net::Ipv4Addr ip)
{
    auto it = by_ip_.find(ip);
    if (it == by_ip_.end())
        return false;
    by_id_.erase(it->second.id);
    by_ip_.erase(it);
    return true;
}

std::optional<Member>
MembershipTable::find(net::Ipv4Addr ip) const
{
    auto it = by_ip_.find(ip);
    if (it == by_ip_.end())
        return std::nullopt;
    return it->second;
}

std::vector<Member>
MembershipTable::members() const
{
    std::vector<Member> out;
    out.reserve(by_id_.size());
    for (const auto &[id, ip] : by_id_)
        out.push_back(by_ip_.at(ip));
    return out;
}

void
ControlPlane::ack(net::Ipv4Addr ip, std::uint16_t port, bool ok)
{
    net::ControlPayload reply;
    reply.action = net::Action::kAck;
    reply.has_value = true;
    reply.value = ok ? 1 : 0;
    if (hooks_.send_control)
        hooks_.send_control(Member{0, ip, port, MemberType::kWorker}, reply);
}

void
ControlPlane::handle(net::Ipv4Addr src_ip, std::uint16_t src_port,
                     const net::ControlPayload &msg)
{
    switch (msg.action) {
      case net::Action::kJoin: {
        const std::uint16_t port =
            msg.has_value ? joinValuePort(msg.value) : src_port;
        const MemberType type =
            msg.has_value ? joinValueType(msg.value) : MemberType::kWorker;
        const std::uint8_t job =
            msg.has_value ? joinValueJob(msg.value) : std::uint8_t{0};
        // A duplicate Join (retransmitted hello, rejoin race) must not
        // trigger a membership recompute: the table did not change.
        // Mirrors the Leave-from-non-member rule below.
        bool changed = false;
        table_.join(src_ip, port, type, job, &changed);
        halted_ = false;
        if (changed && hooks_.membership_changed)
            hooks_.membership_changed();
        ack(src_ip, src_port, true);
        break;
      }
      case net::Action::kLeave: {
        // A Leave from a non-member must not trigger a membership
        // recompute: the table did not change.
        const auto leaver = table_.find(src_ip);
        const bool ok = table_.leave(src_ip);
        if (ok) {
            if (hooks_.member_left)
                hooks_.member_left(*leaver);
            if (hooks_.membership_changed)
                hooks_.membership_changed();
        }
        ack(src_ip, src_port, ok);
        break;
      }
      case net::Action::kReset: {
        if (hooks_.reset_accel)
            hooks_.reset_accel();
        ack(src_ip, src_port, true);
        break;
      }
      case net::Action::kSetH: {
        if (msg.has_value && hooks_.set_threshold) {
            hooks_.set_threshold(static_cast<std::uint32_t>(msg.value));
            ack(src_ip, src_port, true);
        } else {
            ack(src_ip, src_port, false);
        }
        break;
      }
      case net::Action::kFBcast: {
        if (msg.has_value && hooks_.force_broadcast) {
            // Stamp the requester's job into the Seg word so multi-job
            // switches flush the right slot (no-op for job 0).
            const auto m = table_.find(src_ip);
            hooks_.force_broadcast(
                packSegWord(msg.value, m ? m->job : std::uint8_t{0}));
        }
        break;
      }
      case net::Action::kHelp: {
        auto requester = table_.find(src_ip);
        Member req = requester.value_or(
            Member{0, src_ip, src_port, MemberType::kWorker});
        const bool served =
            msg.has_value && hooks_.resend_cached &&
            hooks_.resend_cached(msg.value, req);
        if (!served && msg.has_value && hooks_.send_control) {
            // The segment never completed: some contribution was lost
            // upstream. Drop the partial sum (it may mix retransmitted
            // duplicates otherwise) and ask every worker of the
            // requester's job to retransmit the segment; the workers
            // own recovery, the switch only relays (paper §3.3).
            if (hooks_.clear_segment)
                hooks_.clear_segment(
                    packSegWord(helpSeg(msg.value), req.job));
            net::ControlPayload retx;
            retx.action = net::Action::kHelp;
            retx.has_value = true;
            retx.value = msg.value;
            for (const Member &m : table_.members()) {
                if (m.type == MemberType::kWorker && m.job == req.job)
                    hooks_.send_control(m, retx);
            }
        }
        break;
      }
      case net::Action::kHalt: {
        halted_ = true;
        net::ControlPayload halt;
        halt.action = net::Action::kHalt;
        if (hooks_.send_control) {
            for (const Member &m : table_.members())
                hooks_.send_control(m, halt);
        }
        ack(src_ip, src_port, true);
        break;
      }
      case net::Action::kHeartbeat: {
        // Liveness beat from the HA primary: feed the monitor, no ack
        // (acking would double the control-plane load for no benefit —
        // a lost beat is exactly what the monitor exists to notice).
        if (hooks_.heartbeat)
            hooks_.heartbeat(src_ip);
        break;
      }
      case net::Action::kFailover: {
        // The backup promoted itself; re-home to it. No ack: the
        // promotion is fail-stop and the backup retries nothing.
        if (hooks_.failover)
            hooks_.failover();
        break;
      }
      case net::Action::kAck:
      case net::Action::kNack:
        break; // confirmations/rejections terminate here
    }
}

} // namespace isw::core
