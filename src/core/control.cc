#include "core/control.hh"

namespace isw::core {

std::uint32_t
MembershipTable::join(net::Ipv4Addr ip, std::uint16_t udp_port,
                      MemberType type)
{
    auto it = by_ip_.find(ip);
    if (it != by_ip_.end()) {
        it->second.udp_port = udp_port;
        it->second.type = type;
        return it->second.id;
    }
    const std::uint32_t id = next_id_++;
    by_ip_[ip] = Member{id, ip, udp_port, type};
    by_id_[id] = ip;
    return id;
}

bool
MembershipTable::leave(net::Ipv4Addr ip)
{
    auto it = by_ip_.find(ip);
    if (it == by_ip_.end())
        return false;
    by_id_.erase(it->second.id);
    by_ip_.erase(it);
    return true;
}

std::optional<Member>
MembershipTable::find(net::Ipv4Addr ip) const
{
    auto it = by_ip_.find(ip);
    if (it == by_ip_.end())
        return std::nullopt;
    return it->second;
}

std::vector<Member>
MembershipTable::members() const
{
    std::vector<Member> out;
    out.reserve(by_id_.size());
    for (const auto &[id, ip] : by_id_)
        out.push_back(by_ip_.at(ip));
    return out;
}

void
ControlPlane::ack(net::Ipv4Addr ip, std::uint16_t port, bool ok)
{
    net::ControlPayload reply;
    reply.action = net::Action::kAck;
    reply.has_value = true;
    reply.value = ok ? 1 : 0;
    if (hooks_.send_control)
        hooks_.send_control(Member{0, ip, port, MemberType::kWorker}, reply);
}

void
ControlPlane::handle(net::Ipv4Addr src_ip, std::uint16_t src_port,
                     const net::ControlPayload &msg)
{
    switch (msg.action) {
      case net::Action::kJoin: {
        const std::uint16_t port =
            msg.has_value ? joinValuePort(msg.value) : src_port;
        const MemberType type =
            msg.has_value ? joinValueType(msg.value) : MemberType::kWorker;
        table_.join(src_ip, port, type);
        halted_ = false;
        if (hooks_.membership_changed)
            hooks_.membership_changed();
        ack(src_ip, src_port, true);
        break;
      }
      case net::Action::kLeave: {
        // A Leave from a non-member must not trigger a membership
        // recompute: the table did not change.
        const bool ok = table_.leave(src_ip);
        if (ok && hooks_.membership_changed)
            hooks_.membership_changed();
        ack(src_ip, src_port, ok);
        break;
      }
      case net::Action::kReset: {
        if (hooks_.reset_accel)
            hooks_.reset_accel();
        ack(src_ip, src_port, true);
        break;
      }
      case net::Action::kSetH: {
        if (msg.has_value && hooks_.set_threshold) {
            hooks_.set_threshold(static_cast<std::uint32_t>(msg.value));
            ack(src_ip, src_port, true);
        } else {
            ack(src_ip, src_port, false);
        }
        break;
      }
      case net::Action::kFBcast: {
        if (msg.has_value && hooks_.force_broadcast)
            hooks_.force_broadcast(msg.value);
        break;
      }
      case net::Action::kHelp: {
        auto requester = table_.find(src_ip);
        Member req = requester.value_or(
            Member{0, src_ip, src_port, MemberType::kWorker});
        const bool served =
            msg.has_value && hooks_.resend_cached &&
            hooks_.resend_cached(msg.value, req);
        if (!served && msg.has_value && hooks_.send_control) {
            // The segment never completed: some contribution was lost
            // upstream. Drop the partial sum (it may mix retransmitted
            // duplicates otherwise) and ask every worker to retransmit
            // the segment; the workers own recovery, the switch only
            // relays (paper §3.3).
            if (hooks_.clear_segment)
                hooks_.clear_segment(helpSeg(msg.value));
            net::ControlPayload retx;
            retx.action = net::Action::kHelp;
            retx.has_value = true;
            retx.value = msg.value;
            for (const Member &m : table_.members()) {
                if (m.type == MemberType::kWorker)
                    hooks_.send_control(m, retx);
            }
        }
        break;
      }
      case net::Action::kHalt: {
        halted_ = true;
        net::ControlPayload halt;
        halt.action = net::Action::kHalt;
        if (hooks_.send_control) {
            for (const Member &m : table_.members())
                hooks_.send_control(m, halt);
        }
        ack(src_ip, src_port, true);
        break;
      }
      case net::Action::kAck:
        break; // confirmations terminate here
    }
}

} // namespace isw::core
