/**
 * @file
 * Primary -> backup state replication for the HA switch layer
 * (DESIGN.md §16).
 *
 * The primary aggregation switch streams three kinds of kTosRepl
 * frames to its designated backup over a dedicated peer link:
 *
 *  - State frames: a full snapshot of one in-flight segment buffer —
 *    accumulated words, contribution count, and the complete
 *    contributor set (IPv4 bits appended to the value words). Replace
 *    semantics: the backup overwrites its replica wholesale, so
 *    reordered or re-applied frames are idempotent and the replica's
 *    contributor set is never a partial view (a partial view would let
 *    a post-failover retransmission double-fold).
 *
 *  - Result frames: a completed segment's aggregate plus its
 *    completion sequence number. These feed the backup's result cache
 *    so post-failover Help requests are served without recomputation.
 *
 *  - Membership frames: mirrored Join/Leave events with the member's
 *    IP packed into the upper value bits (the original Join value only
 *    uses the low 32).
 *
 * Replication mode is configurable: per-harvest synchronous (every
 * accepted contribution streams immediately) or batched-lazy (dirty
 * segments are flushed when a bounded staleness window expires). In
 * either mode, results and membership replicate immediately — they are
 * the correctness floor; state frames only save recomputation.
 */

#ifndef ISW_CORE_REPLICATION_HH
#define ISW_CORE_REPLICATION_HH

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "net/packet.hh"
#include "sim/simulation.hh"
#include "sim/time.hh"

namespace isw::core {

class Accelerator;

/** When the primary streams segment-buffer state to the backup. */
enum class ReplicationMode : std::uint8_t {
    kPerHarvest,  ///< synchronous: every accepted contribution
    kBatchedLazy, ///< batched: dirty set flushed per staleness window
};

struct ReplicationConfig
{
    ReplicationMode mode = ReplicationMode::kPerHarvest;
    /** Max age of un-replicated state in kBatchedLazy mode. */
    sim::TimeNs staleness_window = 2 * sim::kMsec;
};

/** Primary-side counters of what was streamed. */
struct ReplicationStats
{
    std::uint64_t state_frames = 0;
    std::uint64_t result_frames = 0;
    std::uint64_t member_frames = 0;
};

/**
 * transfer_id layout of replication frames. Bit 63 discriminates
 * state from result frames; it can never collide with a contributor
 * count or sequence number, and member frames are ControlPayloads.
 */
constexpr std::uint64_t kReplResultBit = 1ULL << 63;

/** State frame: contributor-set size in the high word, count low. */
constexpr std::uint64_t
packReplState(std::uint32_t contributors, std::uint32_t count)
{
    return (std::uint64_t{contributors} << 32) | count;
}

constexpr std::uint32_t
replContributors(std::uint64_t tid)
{
    return static_cast<std::uint32_t>((tid >> 32) & 0x7FFFFFFF);
}

constexpr std::uint32_t
replCount(std::uint64_t tid)
{
    return static_cast<std::uint32_t>(tid & 0xFFFFFFFF);
}

/** Result frame: completion sequence high (31 bits), count low. */
constexpr std::uint64_t
packReplResult(std::uint64_t seq, std::uint32_t count)
{
    return kReplResultBit | ((seq & 0x7FFFFFFFULL) << 32) | count;
}

constexpr std::uint64_t
replResultSeq(std::uint64_t tid)
{
    return (tid >> 32) & 0x7FFFFFFF;
}

/** Membership mirror value: member IP high, original Join value low
 *  (a Join value only occupies bits 0..31: port, type bit, job). */
constexpr std::uint64_t
packReplMember(std::uint32_t ip_bits, std::uint64_t join_value)
{
    return (std::uint64_t{ip_bits} << 32) | (join_value & 0xFFFFFFFFULL);
}

constexpr std::uint32_t
replMemberIp(std::uint64_t v)
{
    return static_cast<std::uint32_t>(v >> 32);
}

constexpr std::uint64_t
replMemberJoinValue(std::uint64_t v)
{
    return v & 0xFFFFFFFFULL;
}

/**
 * The primary-side replication engine. Owned by the primary
 * ProgrammableSwitch; the switch feeds it accept/result/membership
 * events and provides the frame transport (addressing, ToS stamping,
 * and the actual egress all stay in the switch).
 */
class ReplicatedAccelerator
{
  public:
    /** Hand one replication payload to the switch for egress. */
    using SendFn = std::function<void(net::Payload payload)>;

    ReplicatedAccelerator(sim::Simulation &sim, Accelerator &accel,
                          ReplicationConfig cfg, SendFn send);

    /** A contribution was folded into a still-incomplete segment. */
    void onAccept(std::uint64_t key);

    /** A segment completed with sequence @p seq; stream the result. */
    void onResult(std::uint64_t key, const std::vector<float> &values,
                  std::uint32_t wire_floats, std::uint32_t count,
                  std::uint64_t seq, net::Precision prec, std::int8_t qexp);

    /** Mirror a membership event (@p join_value is 0 for Leave). */
    void onMembership(net::Action action, std::uint32_t member_ip_bits,
                      std::uint64_t join_value);

    /** Periodic pump (piggybacks on the heartbeat): flushes the dirty
     *  set once the staleness window expires. kBatchedLazy only. */
    void pump();

    const ReplicationConfig &config() const { return cfg_; }
    const ReplicationStats &stats() const { return stats_; }

  private:
    void sendState(std::uint64_t key);
    void flushDirty();

    sim::Simulation &sim_;
    Accelerator &accel_;
    ReplicationConfig cfg_;
    SendFn send_;
    /** Insertion-ordered dirty set: deterministic flush order keeps
     *  serial and sharded runs byte-identical. */
    std::vector<std::uint64_t> dirty_order_;
    std::unordered_set<std::uint64_t> dirty_;
    sim::TimeNs last_flush_ = 0;
    ReplicationStats stats_;
};

} // namespace isw::core

#endif // ISW_CORE_REPLICATION_HH
