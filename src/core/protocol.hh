/**
 * @file
 * iSwitch wire protocol (paper Figure 5): byte codecs for control and
 * data packets, plus segment-chunking arithmetic.
 *
 * The simulator moves decoded packet structs for speed, but this codec
 * defines the actual bytes-on-the-wire format and is round-trip tested
 * so the protocol is fully specified:
 *
 *   control: [ToS-tagged IP/UDP] | action(1) | value(8, optional)
 *   data:    [ToS-tagged IP/UDP] | seg(8)    | float32 payload
 */

#ifndef ISW_CORE_PROTOCOL_HH
#define ISW_CORE_PROTOCOL_HH

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "net/packet.hh"

namespace isw::core {

/** Floats carried by a full iSwitch data packet (1500-byte MTU). */
constexpr std::size_t kFloatsPerSeg = net::maxChunkFloats(true);

/** Number of segments needed to carry @p wire_bytes of gradient. */
constexpr std::uint64_t
segCount(std::uint64_t wire_bytes)
{
    const std::uint64_t floats = (wire_bytes + 3) / 4;
    return (floats + kFloatsPerSeg - 1) / kFloatsPerSeg;
}

/** Float slots occupied by segment @p seg of a @p wire_bytes vector. */
constexpr std::uint32_t
floatsInSeg(std::uint64_t seg, std::uint64_t wire_bytes)
{
    const std::uint64_t total = (wire_bytes + 3) / 4;
    const std::uint64_t begin = seg * kFloatsPerSeg;
    if (begin >= total)
        return 0;
    const std::uint64_t remain = total - begin;
    return static_cast<std::uint32_t>(
        remain < kFloatsPerSeg ? remain : kFloatsPerSeg);
}

/** Serialize a control payload to UDP payload bytes. */
std::vector<std::uint8_t> encodeControl(const net::ControlPayload &c);

/** Parse control bytes; std::nullopt on malformed input. */
std::optional<net::ControlPayload>
decodeControl(const std::vector<std::uint8_t> &bytes);

/**
 * Serialize a data payload to UDP payload bytes. Slots beyond
 * values.size() (wire padding) are encoded as zero floats so the
 * buffer length always matches the wire size.
 */
std::vector<std::uint8_t> encodeData(const net::ChunkPayload &d);

/** Parse data bytes; std::nullopt on malformed input. */
std::optional<net::ChunkPayload>
decodeData(const std::vector<std::uint8_t> &bytes);

} // namespace isw::core

#endif // ISW_CORE_PROTOCOL_HH
