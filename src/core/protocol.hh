/**
 * @file
 * iSwitch wire protocol (paper Figure 5): byte codecs for control and
 * data packets, plus segment-chunking arithmetic.
 *
 * The simulator moves decoded packet structs for speed, but this codec
 * defines the actual bytes-on-the-wire format and is round-trip tested
 * so the protocol is fully specified:
 *
 *   control: [ToS-tagged IP/UDP] | action(1) | value(8, optional)
 *   data:    [ToS-tagged IP/UDP] | seg(8)    | float32 payload
 */

#ifndef ISW_CORE_PROTOCOL_HH
#define ISW_CORE_PROTOCOL_HH

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "net/packet.hh"

namespace isw::core {

/** Floats carried by a full iSwitch data packet (1500-byte MTU). */
constexpr std::size_t kFloatsPerSeg = net::maxChunkFloats(true);

/**
 * Multi-job + quantized-wire Seg-word layout (DESIGN.md §11, §14).
 * The 8-byte Seg field of a data packet packs, from the low end:
 *
 *   bits [47..0]  segment index
 *   bits [55..48] job id
 *   bit  [56]     slot-reuse version bit
 *   bits [61..57] shared block exponent, biased +16 (int32 wire only)
 *   bits [63..62] precision tag (net::Precision)
 *
 * A (job=0, ver=0, fp32) word equals the bare segment index, so the
 * packed format is byte-identical to the original single-job fp32
 * wire format; the exponent bits are forced to zero unless the
 * precision tag is kInt32.
 */
constexpr std::uint64_t kSegWordIndexMask = (1ULL << 48) - 1;
constexpr unsigned kSegWordJobShift = 48;
constexpr unsigned kSegWordVerShift = 56;
constexpr unsigned kSegWordQexpShift = 57;
constexpr unsigned kSegWordPrecShift = 62;
/** Bias applied to the 5-bit shared-exponent field. */
constexpr int kSegWordQexpBias = 16;

/** Pack (seg, job, ver) into one Seg word. */
constexpr std::uint64_t
packSegWord(std::uint64_t seg, std::uint8_t job = 0, std::uint8_t ver = 0)
{
    return (seg & kSegWordIndexMask) |
           (std::uint64_t{job} << kSegWordJobShift) |
           ((std::uint64_t{ver} & 1) << kSegWordVerShift);
}

/** Segment index of a Seg word. */
constexpr std::uint64_t
segWordIndex(std::uint64_t w)
{
    return w & kSegWordIndexMask;
}

/** Job id of a Seg word. */
constexpr std::uint8_t
segWordJob(std::uint64_t w)
{
    return static_cast<std::uint8_t>((w >> kSegWordJobShift) & 0xFF);
}

/** Version bit of a Seg word. */
constexpr std::uint8_t
segWordVer(std::uint64_t w)
{
    return static_cast<std::uint8_t>((w >> kSegWordVerShift) & 1);
}

/** Pack (seg, job, ver, precision, shared exponent) into one Seg word. */
constexpr std::uint64_t
packSegWord(std::uint64_t seg, std::uint8_t job, std::uint8_t ver,
            net::Precision prec, std::int8_t qexp)
{
    const std::uint64_t p = static_cast<std::uint64_t>(prec) & 3;
    const std::uint64_t q =
        prec == net::Precision::kInt32
            ? static_cast<std::uint64_t>(qexp + kSegWordQexpBias) & 31
            : 0;
    return packSegWord(seg, job, ver) | (q << kSegWordQexpShift) |
           (p << kSegWordPrecShift);
}

/** Precision tag of a Seg word. */
constexpr net::Precision
segWordPrec(std::uint64_t w)
{
    return static_cast<net::Precision>((w >> kSegWordPrecShift) & 3);
}

/** Shared block exponent of a Seg word (0 unless the tag is kInt32). */
constexpr std::int8_t
segWordQexp(std::uint64_t w)
{
    if (segWordPrec(w) != net::Precision::kInt32)
        return 0;
    return static_cast<std::int8_t>(
        static_cast<int>((w >> kSegWordQexpShift) & 31) - kSegWordQexpBias);
}

/** Number of segments needed to carry @p wire_bytes of gradient. */
constexpr std::uint64_t
segCount(std::uint64_t wire_bytes)
{
    const std::uint64_t floats = (wire_bytes + 3) / 4;
    return (floats + kFloatsPerSeg - 1) / kFloatsPerSeg;
}

/** Float slots occupied by segment @p seg of a @p wire_bytes vector. */
constexpr std::uint32_t
floatsInSeg(std::uint64_t seg, std::uint64_t wire_bytes)
{
    const std::uint64_t total = (wire_bytes + 3) / 4;
    const std::uint64_t begin = seg * kFloatsPerSeg;
    if (begin >= total)
        return 0;
    const std::uint64_t remain = total - begin;
    return static_cast<std::uint32_t>(
        remain < kFloatsPerSeg ? remain : kFloatsPerSeg);
}

/** Serialize a control payload to UDP payload bytes. */
std::vector<std::uint8_t> encodeControl(const net::ControlPayload &c);

/** Parse control bytes; std::nullopt on malformed input. */
std::optional<net::ControlPayload>
decodeControl(const std::vector<std::uint8_t> &bytes);

/**
 * Serialize a data payload to UDP payload bytes. Slots beyond
 * values.size() (wire padding) are encoded as zero floats so the
 * buffer length always matches the wire size.
 */
std::vector<std::uint8_t> encodeData(const net::ChunkPayload &d);

/** Parse data bytes; std::nullopt on malformed input. */
std::optional<net::ChunkPayload>
decodeData(const std::vector<std::uint8_t> &bytes);

} // namespace isw::core

#endif // ISW_CORE_PROTOCOL_HH
