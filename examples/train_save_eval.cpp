/**
 * @file
 * The full model lifecycle: train a DDPG policy with distributed
 * in-switch aggregation, checkpoint the weights to disk, reload them
 * into a fresh agent, and evaluate the deterministic policy on unseen
 * environment seeds.
 */

#include <cstdio>

#include "dist/strategy.hh"
#include "ml/serialize.hh"
#include "rl/evaluate.hh"
#include "rl/model_zoo.hh"

int
main()
{
    using namespace isw;
    const char *ckpt = "cheetah_policy.iswckpt";

    // --- 1. Distributed training --------------------------------------
    dist::JobConfig cfg = dist::JobConfig::forBenchmark(
        rl::Algo::kDdpg, dist::StrategyKind::kSyncIswitch, 4);
    cfg.stop.max_iterations = 3000;
    std::printf("training DDPG on CheetahLite (4 workers, iSwitch)...\n");
    auto job = dist::makeJob(cfg);
    const dist::RunResult res = job->run();
    std::printf("  %llu iterations, training reward %.2f\n",
                static_cast<unsigned long long>(res.iterations),
                res.final_avg_reward);

    // --- 2. Checkpoint --------------------------------------------------
    ml::Vec weights;
    job->workerAgent(0).getWeights(weights);
    ml::saveWeightsFile(ckpt, weights);
    std::printf("  checkpointed %zu parameters to %s\n", weights.size(),
                ckpt);

    // --- 3. Reload into a fresh agent ----------------------------------
    auto fresh = rl::makeAgent(rl::Algo::kDdpg,
                               rl::specFor(rl::Algo::kDdpg).config,
                               /*weight_seed=*/999, /*env_seed=*/888);
    fresh->setWeights(ml::loadWeightsFile(ckpt));

    // --- 4. Evaluate on environments the training never saw ------------
    auto env = rl::makeEnvironment(rl::Algo::kDdpg, /*seed=*/123456);
    const rl::EvalResult hot = rl::evaluatePolicy(*fresh, *env, 10);

    auto cold_agent = rl::makeAgent(rl::Algo::kDdpg,
                                    rl::specFor(rl::Algo::kDdpg).config,
                                    999, 888);
    auto env2 = rl::makeEnvironment(rl::Algo::kDdpg, /*seed=*/123456);
    const rl::EvalResult cold = rl::evaluatePolicy(*cold_agent, *env2, 10);

    std::printf("\nevaluation over 10 unseen episodes:\n");
    std::printf("  untrained policy: mean %.2f (min %.2f, max %.2f)\n",
                cold.mean_reward, cold.min_reward, cold.max_reward);
    std::printf("  restored policy:  mean %.2f (min %.2f, max %.2f)\n",
                hot.mean_reward, hot.min_reward, hot.max_reward);
    std::remove(ckpt);
    return 0;
}
