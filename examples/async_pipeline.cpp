/**
 * @file
 * Asynchronous training with the three-stage pipeline (paper §4.1,
 * Algorithm 1): LGC runs back-to-back on every worker, the switch
 * aggregates whatever arrives once H vectors are in, and the LWU
 * thread applies each broadcast. Shows the staleness bound at work
 * and compares convergence against the asynchronous parameter server.
 */

#include <cstdio>

#include "dist/iswitch_async.hh"
#include "harness/experiment.hh"

int
main()
{
    using namespace isw;

    // --- Async iSwitch with the paper's staleness bound S=3 ----------
    dist::JobConfig cfg = dist::JobConfig::forBenchmark(
        rl::Algo::kDqn, dist::StrategyKind::kAsyncIswitch, /*workers=*/4);
    cfg.wire_model_bytes /= 8; // keep the demo snappy
    cfg.stop.max_iterations = 1500;
    cfg.curve_every = 250;

    auto job = std::make_unique<dist::AsyncIswitchJob>(cfg);
    dist::AsyncIswitchJob *raw = job.get();
    std::printf("Async iSwitch, S=%u, %zu workers, pipelined LGC/GA/LWU\n",
                cfg.staleness_bound, cfg.num_workers);
    const dist::RunResult isw = job->run();

    std::printf("  weight updates:      %llu\n",
                static_cast<unsigned long long>(isw.iterations));
    std::printf("  update interval:     %.2f ms\n", isw.perIterationMs());
    std::printf("  gradients committed: %llu, skipped as stale: %llu\n",
                static_cast<unsigned long long>(raw->gradientsCommitted()),
                static_cast<unsigned long long>(raw->gradientsSkipped()));
    std::printf("  final avg reward:    %.2f\n\n", isw.final_avg_reward);

    // --- Async PS baseline on the same budget -------------------------
    dist::JobConfig ps_cfg = cfg;
    ps_cfg.strategy = dist::StrategyKind::kAsyncPs;
    std::printf("Async parameter server, same S and budget\n");
    const dist::RunResult ps = dist::runJob(ps_cfg);
    std::printf("  weight updates:      %llu\n",
                static_cast<unsigned long long>(ps.iterations));
    std::printf("  update interval:     %.2f ms\n", ps.perIterationMs());
    std::printf("  final avg reward:    %.2f\n\n", ps.final_avg_reward);

    std::printf("Reward trajectories (per %zu updates):\n  iSW:",
                cfg.curve_every);
    for (const auto &p : isw.reward_curve.points())
        std::printf(" %6.2f", p.v);
    std::printf("\n  PS: ");
    for (const auto &p : ps.reward_curve.points())
        std::printf(" %6.2f", p.v);
    std::printf("\n\nFresher gradients (in-switch aggregation) mean less"
                "\nstaleness per update, which is the paper's source of"
                "\nasync iteration savings (44.4%%-77.8%%).\n");
    return 0;
}
