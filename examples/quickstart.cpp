/**
 * @file
 * Quickstart: train PPO on the Hopper1D benchmark with 4 workers
 * aggregating gradients through a simulated programmable switch.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "dist/strategy.hh"

int
main()
{
    using namespace isw;

    // A job description: which algorithm, which aggregation strategy,
    // how many workers, and when to stop. forBenchmark() pulls the
    // paper's hyperparameters and wire model size (40.02 KB for PPO).
    dist::JobConfig cfg = dist::JobConfig::forBenchmark(
        rl::Algo::kPpo, dist::StrategyKind::kSyncIswitch, /*workers=*/4);
    cfg.stop.max_iterations = 300;
    cfg.stop.target_reward = 30.0; // stop early once the hopper hops
    cfg.curve_every = 25;

    std::printf("Training %s with %s on %zu workers...\n",
                rl::algoName(cfg.algo), dist::strategyName(cfg.strategy),
                cfg.num_workers);

    const dist::RunResult res = dist::runJob(cfg);

    std::printf("\n%-28s %llu%s\n", "iterations:",
                static_cast<unsigned long long>(res.iterations),
                res.reached_target ? " (reward target reached)" : "");
    std::printf("%-28s %.2f\n", "final avg episode reward:",
                res.final_avg_reward);
    std::printf("%-28s %.1f ms\n", "simulated end-to-end time:",
                sim::toMillis(res.total_time));
    std::printf("%-28s %.3f ms\n", "per-iteration time:",
                res.perIterationMs());
    std::printf("%-28s %.3f ms\n", "  of which aggregation:",
                res.breakdown.meanMs(dist::IterComponent::kGradAggregation));

    std::printf("\nreward curve (simulated seconds -> avg reward):\n");
    for (const auto &p : res.reward_curve.points())
        std::printf("  %6.2f s  %8.2f\n", sim::toSeconds(p.t), p.v);
    return 0;
}
