/**
 * @file
 * Rack-scale training: 12 workers in racks of 3 under ToR switches
 * with a core switch on top (paper Figure 10), using hierarchical
 * in-switch aggregation — each ToR sums its rack, the core sums the
 * racks, results fan back down. Compares against the centralized
 * parameter server on the same fabric.
 */

#include <cstdio>

#include "dist/strategy.hh"

namespace {

isw::dist::RunResult
run(isw::dist::StrategyKind k)
{
    using namespace isw;
    dist::JobConfig cfg =
        dist::JobConfig::forBenchmark(rl::Algo::kA2c, k, /*workers=*/12);
    cfg.use_tree = true;
    cfg.cluster.per_rack = 3;
    cfg.cluster.uplink.bandwidth_bps = 40e9; // faster ToR<->core links
    cfg.stop.max_iterations = 60;

    std::printf("=== %s on the rack-scale tree ===\n",
                dist::strategyName(k));
    auto job = dist::makeJob(cfg);
    const dist::RunResult res = job->run();

    std::printf("  racks: %zu ToR switches under one core\n",
                job->cluster().leaves.size());
    for (auto *tor : job->cluster().leaves) {
        std::printf("  %-6s H=%u, aggregated %llu tagged packets, "
                    "completed %llu segments\n",
                    tor->name().c_str(), tor->accelerator().threshold(),
                    static_cast<unsigned long long>(
                        tor->accelerator().packetsIngested()),
                    static_cast<unsigned long long>(
                        tor->accelerator().segmentsEmitted()));
    }
    std::printf("  per-iteration: %.2f ms (aggregation %.2f ms), "
                "reward %.2f\n\n",
                res.perIterationMs(),
                res.breakdown.meanMs(
                    isw::dist::IterComponent::kGradAggregation),
                res.final_avg_reward);
    return res;
}

} // namespace

int
main()
{
    using namespace isw;
    const dist::RunResult isw_res = run(dist::StrategyKind::kSyncIswitch);
    const dist::RunResult ps_res = run(dist::StrategyKind::kSyncPs);

    std::printf("hierarchical iSwitch vs central PS at 12 workers: "
                "%.2fx faster per iteration\n",
                ps_res.perIterationMs() / isw_res.perIterationMs());
    return 0;
}
