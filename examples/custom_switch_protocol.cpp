/**
 * @file
 * Protocol-level walkthrough: builds a network by hand, performs the
 * real Join handshake with control packets (no admin shortcuts),
 * streams tagged gradient segments into the switch, and receives the
 * aggregated broadcast — the raw iSwitch dataplane of paper §3.2,
 * including the byte-level codec of Figure 5.
 */

#include <cstdio>
#include <sstream>

#include "core/programmable_switch.hh"
#include "core/protocol.hh"
#include "net/topology.hh"
#include "net/trace.hh"

int
main()
{
    using namespace isw;
    using net::Action;

    sim::Simulation s{42};
    net::Topology topo{s};
    net::PacketTrace trace{s, 64};

    // One programmable switch, three worker hosts.
    core::ProgrammableSwitchConfig sw_cfg;
    sw_cfg.ip = net::Ipv4Addr(10, 0, 0, 1);
    auto *sw = topo.addSwitch<core::ProgrammableSwitch>("sw0", 3, sw_cfg);
    std::vector<net::Host *> workers;
    for (int i = 0; i < 3; ++i) {
        auto *h = topo.addHost("w" + std::to_string(i),
                               net::Ipv4Addr(10, 0, 0,
                                             static_cast<std::uint8_t>(2 + i)));
        topo.connectHost(h, sw, static_cast<std::size_t>(i));
        workers.push_back(h);
    }

    trace.attachAll(topo);
    trace.setIswitchOnly(true); // capture only protocol traffic

    // Wire-format sanity: the Figure 5 codec round-trips real bytes.
    net::ControlPayload join;
    join.action = Action::kJoin;
    join.has_value = true;
    join.value = core::encodeJoinValue(9999, core::MemberType::kWorker);
    const auto bytes = core::encodeControl(join);
    std::printf("Join control message encodes to %zu bytes on the wire\n",
                bytes.size());

    // Real Join handshake from every worker; count the Acks.
    int acks = 0;
    for (auto *h : workers) {
        h->setReceiveHandler([&acks, &s](net::PacketPtr pkt) {
            if (const auto *c =
                    std::get_if<net::ControlPayload>(&pkt->payload)) {
                if (c->action == Action::kAck) {
                    ++acks;
                    std::printf("  [%8llu ns] Ack received\n",
                                static_cast<unsigned long long>(s.now()));
                }
            }
        });
        h->sendTo(sw->ip(), 9000, 9999, net::kTosControl, join);
    }
    s.run();
    std::printf("membership: %zu workers, auto threshold H=%u (%d acks)\n\n",
                sw->controlPlane().table().size(),
                sw->accelerator().threshold(), acks);

    // Each worker streams a 2-segment gradient; watch aggregation.
    std::printf("streaming 2-segment gradients from 3 workers...\n");
    int results = 0;
    for (std::size_t i = 0; i < workers.size(); ++i) {
        workers[i]->setReceiveHandler([&results, &s, i](net::PacketPtr pkt) {
            if (pkt->ip.tos != net::kTosResult)
                return;
            const auto *chunk =
                std::get_if<net::ChunkPayload>(&pkt->payload);
            if (chunk == nullptr)
                return;
            ++results;
            std::printf("  [%8llu ns] worker %zu got aggregated seg %llu: "
                        "[%.1f, %.1f]\n",
                        static_cast<unsigned long long>(s.now()), i,
                        static_cast<unsigned long long>(chunk->seg),
                        chunk->values[0], chunk->values[1]);
        });
    }
    for (std::size_t w = 0; w < workers.size(); ++w) {
        for (std::uint64_t seg = 0; seg < 2; ++seg) {
            net::ChunkPayload chunk;
            chunk.seg = seg;
            chunk.wire_floats = 2;
            chunk.values = {static_cast<float>(w + 1),
                            static_cast<float>(10 * (w + 1))};
            workers[w]->sendTo(sw->ip(), 9000, 9999, net::kTosData, chunk);
        }
    }
    s.run();
    std::printf("\n%d result packets delivered; each segment sums to "
                "[6.0, 60.0] = 1+2+3 contributions — aggregated on the fly "
                "at packet granularity.\n",
                results);

    std::printf("\npacket trace (iSwitch-plane frames, tail):\n");
    std::ostringstream os;
    trace.dump(os);
    const std::string text = os.str();
    std::size_t shown = 0, pos = text.size();
    while (pos > 0 && shown < 6) {
        const std::size_t prev = text.rfind('\n', pos - 2);
        pos = prev == std::string::npos ? 0 : prev + 1;
        ++shown;
    }
    std::fputs(text.c_str() + pos, stdout);
    std::printf("(%llu frames captured in total)\n",
                static_cast<unsigned long long>(trace.captured()));
    return 0;
}
