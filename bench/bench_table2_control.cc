/**
 * @file
 * Exercises paper Table 2: every iSwitch control message against a
 * simulated programmable switch, reporting the round-trip latency of
 * the acknowledged actions and the side effects of the rest.
 */

#include <iostream>

#include "common.hh"
#include "core/programmable_switch.hh"
#include "net/topology.hh"

using namespace isw;

namespace {

struct ControlBench
{
    sim::Simulation s{1};
    net::Topology topo{s};
    core::ProgrammableSwitch *sw = nullptr;
    net::Host *worker = nullptr;
    sim::TimeNs last_ack_rtt = 0;
    std::uint64_t acks = 0;

    ControlBench()
    {
        core::ProgrammableSwitchConfig cfg;
        cfg.ip = net::Ipv4Addr(10, 0, 0, 1);
        sw = topo.addSwitch<core::ProgrammableSwitch>("sw0", 4, cfg);
        worker = topo.addHost("w0", net::Ipv4Addr(10, 0, 0, 2));
        topo.connectHost(worker, sw, 0);
        worker->setReceiveHandler([this](net::PacketPtr pkt) {
            const auto *c =
                std::get_if<net::ControlPayload>(&pkt->payload);
            if (c != nullptr && c->action == net::Action::kAck) {
                ++acks;
                last_ack_rtt = s.now() - send_time_;
            }
        });
    }

    sim::TimeNs send_time_ = 0;

    /** Send one control message and run to quiescence. */
    void
    send(net::Action a, std::uint64_t value, bool has_value)
    {
        send_time_ = s.now();
        net::ControlPayload c;
        c.action = a;
        c.value = value;
        c.has_value = has_value;
        worker->sendTo(sw->ip(), 9000, 9999, net::kTosControl, c);
        s.run();
    }
};

} // namespace

int
main(int argc, char **argv)
{
    bench::initBench(argc, argv);
    bench::printHeader("Table 2 — control messages in the iSwitch protocol");
    ControlBench b;

    harness::Table t({"Name", "Description (observed effect)",
                      "Ack RTT (us)"});

    b.send(net::Action::kJoin,
           core::encodeJoinValue(9999, core::MemberType::kWorker), true);
    t.row({"Join",
           "membership=" + std::to_string(b.sw->controlPlane().table().size()) +
               ", H=" + std::to_string(b.sw->accelerator().threshold()),
           harness::fmt(sim::toMillis(b.last_ack_rtt) * 1000.0, 2)});

    b.send(net::Action::kSetH, 3, true);
    t.row({"SetH", "H=" + std::to_string(b.sw->accelerator().threshold()),
           harness::fmt(sim::toMillis(b.last_ack_rtt) * 1000.0, 2)});

    // Stage a partial segment, then drive FBcast/Help/Reset at it.
    net::ChunkPayload chunk;
    chunk.seg = 0;
    chunk.wire_floats = 4;
    chunk.values = {1, 2, 3, 4};
    b.worker->sendTo(b.sw->ip(), 9000, 9999, net::kTosData, chunk);
    b.s.run();

    b.send(net::Action::kFBcast, 0, true);
    t.row({"FBcast",
           "partial broadcast, segs_left=" +
               std::to_string(b.sw->accelerator().pool().activeSegments()),
           "-"});

    b.send(net::Action::kHelp, core::helpValue(1, 0), true);
    t.row({"Help",
           "cached result re-sent (cache=" +
               std::to_string(b.sw->cachedResults()) + ")",
           "-"});

    b.worker->sendTo(b.sw->ip(), 9000, 9999, net::kTosData, chunk);
    b.s.run();
    b.send(net::Action::kReset, 0, false);
    t.row({"Reset",
           "buffers/counters cleared, segs=" +
               std::to_string(b.sw->accelerator().pool().activeSegments()),
           harness::fmt(sim::toMillis(b.last_ack_rtt) * 1000.0, 2)});

    b.send(net::Action::kHalt, 0, false);
    t.row({"Halt",
           std::string("training suspended, halted=") +
               (b.sw->controlPlane().halted() ? "true" : "false"),
           harness::fmt(sim::toMillis(b.last_ack_rtt) * 1000.0, 2)});

    b.send(net::Action::kLeave, 0, false);
    t.row({"Leave",
           "membership=" +
               std::to_string(b.sw->controlPlane().table().size()),
           harness::fmt(sim::toMillis(b.last_ack_rtt) * 1000.0, 2)});

    const std::uint64_t before = b.acks;
    b.send(net::Action::kAck, 1, true);
    t.row({"Ack",
           std::string("terminal, no reply (acks unchanged: ") +
               (b.acks == before ? "yes" : "no") + ")",
           "-"});

    t.print();
    bench::writeReport("table2_control");
    return 0;
}
