/**
 * @file
 * Reproduces paper Table 4: synchronous training — number of
 * iterations, end-to-end training time, and final average reward for
 * PS / AR / iSW on all four benchmarks.
 *
 * Method: the three synchronous strategies are mathematically
 * equivalent (verified by tests), so one learning run per benchmark
 * yields the iteration count and reward; paper-wire timing runs yield
 * each strategy's per-iteration time; end-to-end = iterations x
 * per-iteration time (see EXPERIMENTS.md).
 */

#include <iostream>

#include "common.hh"

using namespace isw;

int
main(int argc, char **argv)
{
    bench::initBench(argc, argv);
    bench::printHeader("Table 4 — synchronous training comparison");

    // Declare the whole sweep up front: 4 learning runs + 12 timing
    // runs execute in parallel on the runner's pool.
    std::vector<harness::ExperimentSpec> specs;
    for (auto algo : bench::kAlgos) {
        specs.push_back(
            harness::learningSpec(algo, dist::StrategyKind::kSyncIswitch));
        for (auto k : bench::kSyncStrategies)
            specs.push_back(harness::timingSpec(algo, k));
    }
    bench::prefetch(specs);

    harness::Table t({"Benchmark", "Iterations", "Final Avg Reward",
                      "PS end-to-end (s)", "AR end-to-end (s)",
                      "iSW end-to-end (s)", "iSW speedup vs PS",
                      "paper speedup"});

    for (auto algo : bench::kAlgos) {
        const dist::RunResult &lr = bench::runner().run(
            harness::learningSpec(algo, dist::StrategyKind::kSyncIswitch));

        const double iters = static_cast<double>(lr.iterations);
        const double ps_s =
            iters * bench::perIterMs(algo, dist::StrategyKind::kSyncPs) /
            1000.0;
        const double ar_s =
            iters *
            bench::perIterMs(algo, dist::StrategyKind::kSyncAllReduce) /
            1000.0;
        const double isw_s =
            iters *
            bench::perIterMs(algo, dist::StrategyKind::kSyncIswitch) /
            1000.0;

        t.row({rl::algoName(algo),
               harness::fmtSci(iters) +
                   (lr.reached_target ? " (to target)" : " (cap)"),
               harness::fmt(lr.final_avg_reward, 2), harness::fmt(ps_s, 2),
               harness::fmt(ar_s, 2), harness::fmt(isw_s, 2),
               bench::speedupStr(ps_s / isw_s),
               bench::speedupStr(harness::paperSyncSpeedup(
                   algo, dist::StrategyKind::kSyncIswitch))});
    }
    t.print();

    harness::banner("Paper Table 4 (for reference)");
    harness::Table p({"Benchmark", "Iterations", "PS (hrs)", "AR (hrs)",
                      "iSW (hrs)", "Rewards PS/AR/iSW"});
    for (const auto &row : harness::paperSyncTable()) {
        p.row({rl::algoName(row.algo), harness::fmtSci(row.iterations),
               harness::fmt(row.ps_hours, 2), harness::fmt(row.ar_hours, 2),
               harness::fmt(row.isw_hours, 2),
               harness::fmt(row.ps_reward, 2) + "/" +
                   harness::fmt(row.ar_reward, 2) + "/" +
                   harness::fmt(row.isw_reward, 2)});
    }
    p.print();
    std::cout << "\nAbsolute times differ (local envs, laptop-scale models,"
              << "\nscaled iteration budgets); orderings and speedup shapes"
              << "\nare the reproduction target.\n";
    bench::writeReport("table4_sync");
    return 0;
}
