#!/usr/bin/env python3
"""Compare fresh BENCH_micro_*.json reports against bench/baselines/.

Warn-only by design: micro-bench timings on shared CI runners are
noisy, so ordinary drift only prints a warning. The step fails only on
a catastrophic (> 2x by default) per-iteration slowdown, which almost
always means a real regression rather than noise.

Usage: compare_baselines.py <reports_dir> [--baselines DIR] [--fail-ratio R]
"""

import argparse
import json
import pathlib
import sys


def load_runs(path):
    """Map benchmark run name -> per-iteration cpu time (ns)."""
    with open(path) as f:
        doc = json.load(f)
    return {
        run["name"]: run["cpu_time_ns"]
        for run in doc.get("runs", [])
        if run.get("cpu_time_ns", 0) > 0
    }


RECOVERY_KEYS = (
    "retx_timeouts",
    "retx_segments",
    "help_requests",
    "fbcasts",
    "recoveries",
    "retx_gave_up",
    "fault_ge_drops",
    "fault_iid_drops",
    "fault_down_drops",
)


def check_fault_recovery(base_path, fresh_path, failures):
    """Correctness gate for the fault-injection bench.

    Unlike the micro benches this report is simulated-deterministic,
    so missing runs, errored runs, and runs that made zero training
    progress are hard failures; recovery-counter drift only warns
    (counters legitimately move when recovery tuning changes).
    """
    with open(base_path) as f:
        base = {r["name"]: r for r in json.load(f).get("runs", [])}
    with open(fresh_path) as f:
        fresh = {r["name"]: r for r in json.load(f).get("runs", [])}
    checked = 0
    for name, b in sorted(base.items()):
        r = fresh.get(name)
        if r is None:
            failures.append((name, "missing from fresh fault report"))
            continue
        if r.get("error"):
            failures.append((name, f"errored: {r['error']}"))
            continue
        if r.get("iterations", 0) <= 0:
            failures.append((name, "zero iterations under faults"))
            continue
        checked += 1
        for key in RECOVERY_KEYS:
            want = b.get("extras", {}).get(key)
            got = r.get("extras", {}).get(key)
            if want != got:
                print(f"WARN  {name}: {key} drifted {want} -> {got}")
    print(f"# fault-recovery: {checked}/{len(base)} runs healthy")


FAILOVER_KEYS = (
    "failover_heartbeats",
    "failover_beats_missed",
    "failover_promote_ms",
    "failover_repl_frames",
    "fault_switch_drops",
)


def check_failover(base_path, fresh_path, failures):
    """Hard gate for the switch-failover rows of the fault bench.

    Every "/failover-" run named in the committed baseline must be
    present in the fresh report, error-free, show real training
    progress, and report exactly one promotion (failover_events == 1 —
    a run that finished without ever failing over did not test
    failover). Counter drift only warns, as with the fault rows.
    """
    with open(base_path) as f:
        base = {r["name"]: r for r in json.load(f).get("runs", [])}
    rows = {n: r for n, r in base.items() if "/failover-" in n}
    if not rows:
        failures.append((base_path.name, "baseline names no failover runs"))
        return
    with open(fresh_path) as f:
        fresh = {r["name"]: r for r in json.load(f).get("runs", [])}
    checked = 0
    for name, b in sorted(rows.items()):
        r = fresh.get(name)
        if r is None:
            failures.append((name, "missing from fresh failover report"))
            continue
        if r.get("error"):
            failures.append((name, f"errored: {r['error']}"))
            continue
        if r.get("iterations", 0) <= 0:
            failures.append((name, "zero iterations across the failover"))
            continue
        if r.get("extras", {}).get("failover_events") != 1:
            failures.append((name, "run never promoted the backup"))
            continue
        checked += 1
        for key in FAILOVER_KEYS:
            want = b.get("extras", {}).get(key)
            got = r.get("extras", {}).get(key)
            if want != got:
                print(f"WARN  {name}: {key} drifted {want} -> {got}")
    print(f"# failover: {checked}/{len(rows)} runs healthy")


def check_sharded_async(base_path, fresh_path, failures):
    """Hard gate for the sharded-async rows of the fig14 bench.

    The domain-sharded engine must keep running the async strategies.
    Every "/sharded" run named in the committed baseline must be
    present in the fresh report, error-free, and show real progress:
    training iterations > 0 AND at least one window executed on the
    parallel engine (perf.shard_windows > 0 — a run that silently fell
    back to the serial engine has no business passing).
    """
    with open(base_path) as f:
        base = {r["name"]: r for r in json.load(f).get("runs", [])}
    sharded = {n: r for n, r in base.items() if "/sharded" in n}
    if not sharded:
        failures.append(
            (base_path.name, "baseline names no sharded-async runs"))
        return
    with open(fresh_path) as f:
        fresh = {r["name"]: r for r in json.load(f).get("runs", [])}
    checked = 0
    for name in sorted(sharded):
        r = fresh.get(name)
        if r is None:
            failures.append((name, "missing from fresh async report"))
            continue
        if r.get("error"):
            failures.append((name, f"errored: {r['error']}"))
            continue
        if r.get("iterations", 0) <= 0:
            failures.append((name, "zero iterations on the sharded engine"))
            continue
        if r.get("perf", {}).get("shard_windows", 0) <= 0:
            failures.append(
                (name, "zero windows: fell back off the sharded engine"))
            continue
        checked += 1
    print(f"# sharded-async: {checked}/{len(sharded)} runs healthy")


FAIRNESS_FLOOR = 0.90

SLOT_KEYS = (
    "slot_capacity",
    "slot_stale_drops",
    "slot_busy_drops",
    "slot_unadmitted",
    "slot_reclaimed",
    "slot_contention_events",
)


def check_switch_sharing(base_path, fresh_path, failures):
    """Correctness gate for the multi-job switch-sharing bench.

    The report is simulated-deterministic. Hard failures: a scenario
    missing from the fresh report, a job that errored or made zero
    progress, or cross-job fairness collapsing below FAIRNESS_FLOOR
    (partitioned slots should keep co-scheduled jobs near-equal).
    Slot-counter drift only warns, as with the fault bench.
    """
    with open(base_path) as f:
        base = {r["name"]: r for r in json.load(f).get("runs", [])}
    with open(fresh_path) as f:
        fresh = {r["name"]: r for r in json.load(f).get("runs", [])}
    checked = 0
    for name, b in sorted(base.items()):
        r = fresh.get(name)
        if r is None:
            failures.append((name, "missing from fresh sharing report"))
            continue
        bad = False
        for i, job in enumerate(r.get("job_results", [])):
            if job.get("error"):
                failures.append((name, f"job {i} errored: {job['error']}"))
                bad = True
            elif job.get("iterations", 0) <= 0:
                failures.append((name, f"job {i} made zero iterations"))
                bad = True
        fairness = r.get("fabric", {}).get("jain_fairness", 0.0)
        if fairness < FAIRNESS_FLOOR:
            failures.append(
                (name, f"jain fairness {fairness:.3f} < {FAIRNESS_FLOOR}"))
            bad = True
        if not bad:
            checked += 1
        for key in SLOT_KEYS:
            want = b.get("fabric", {}).get(key)
            got = r.get("fabric", {}).get(key)
            if want != got:
                print(f"WARN  {name}: {key} drifted {want} -> {got}")
    print(f"# switch-sharing: {checked}/{len(base)} scenarios healthy")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("reports_dir", type=pathlib.Path)
    ap.add_argument(
        "--baselines",
        type=pathlib.Path,
        default=pathlib.Path(__file__).parent / "baselines",
    )
    ap.add_argument("--fail-ratio", type=float, default=2.0)
    args = ap.parse_args()

    failures = []
    compared = 0

    recovery_base = args.baselines / "BENCH_fault_recovery.json"
    recovery_fresh = args.reports_dir / "BENCH_fault_recovery.json"
    if recovery_base.exists():
        if recovery_fresh.exists():
            check_fault_recovery(recovery_base, recovery_fresh, failures)
            check_failover(recovery_base, recovery_fresh, failures)
        else:
            print("WARN: no fresh report for BENCH_fault_recovery.json")
    async_base = args.baselines / "BENCH_fig14_async_curves.json"
    async_fresh = args.reports_dir / "BENCH_fig14_async_curves.json"
    if not async_base.exists():
        # Unlike the warn-only micro baselines this one is a hard
        # requirement: losing it would silently stop gating the
        # sharded-async datapath.
        failures.append(
            (async_base.name, "sharded-async baseline missing"))
    elif not async_fresh.exists():
        failures.append(
            (async_fresh.name, "no fresh sharded-async report"))
    else:
        check_sharded_async(async_base, async_fresh, failures)
    sharing_base = args.baselines / "BENCH_switch_sharing.json"
    sharing_fresh = args.reports_dir / "BENCH_switch_sharing.json"
    if sharing_base.exists():
        if sharing_fresh.exists():
            check_switch_sharing(sharing_base, sharing_fresh, failures)
        else:
            print("WARN: no fresh report for BENCH_switch_sharing.json")
    for base_path in sorted(args.baselines.glob("BENCH_micro_*.json")):
        fresh_path = args.reports_dir / base_path.name
        if not fresh_path.exists():
            print(f"WARN: no fresh report for {base_path.name}")
            continue
        base = load_runs(base_path)
        fresh = load_runs(fresh_path)
        for name, base_ns in sorted(base.items()):
            if name not in fresh:
                print(f"WARN: {base_path.name}: run '{name}' missing")
                continue
            ratio = fresh[name] / base_ns
            compared += 1
            tag = "OK"
            if ratio > args.fail_ratio:
                tag = "FAIL"
                failures.append(
                    (name, f"slowed down {ratio:.2f}x "
                           f"(limit {args.fail_ratio}x)"))
            elif ratio > 1.25:
                tag = "WARN"
            print(
                f"{tag:>4}  {name:<40} {base_ns:>12.1f} ns -> "
                f"{fresh[name]:>12.1f} ns  ({ratio:.2f}x)"
            )

    print(f"# compared {compared} runs against {args.baselines}")
    if failures:
        print(f"# {len(failures)} failing run(s):")
        for name, reason in failures:
            print(f"#   {name}: {reason}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
