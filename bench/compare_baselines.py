#!/usr/bin/env python3
"""Compare fresh BENCH_micro_*.json reports against bench/baselines/.

Warn-only by design: micro-bench timings on shared CI runners are
noisy, so ordinary drift only prints a warning. The step fails only on
a catastrophic (> 2x by default) per-iteration slowdown, which almost
always means a real regression rather than noise.

Usage: compare_baselines.py <reports_dir> [--baselines DIR] [--fail-ratio R]
"""

import argparse
import json
import pathlib
import sys


def load_runs(path):
    """Map benchmark run name -> per-iteration cpu time (ns)."""
    with open(path) as f:
        doc = json.load(f)
    return {
        run["name"]: run["cpu_time_ns"]
        for run in doc.get("runs", [])
        if run.get("cpu_time_ns", 0) > 0
    }


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("reports_dir", type=pathlib.Path)
    ap.add_argument(
        "--baselines",
        type=pathlib.Path,
        default=pathlib.Path(__file__).parent / "baselines",
    )
    ap.add_argument("--fail-ratio", type=float, default=2.0)
    args = ap.parse_args()

    failures = []
    compared = 0
    for base_path in sorted(args.baselines.glob("BENCH_micro_*.json")):
        fresh_path = args.reports_dir / base_path.name
        if not fresh_path.exists():
            print(f"WARN: no fresh report for {base_path.name}")
            continue
        base = load_runs(base_path)
        fresh = load_runs(fresh_path)
        for name, base_ns in sorted(base.items()):
            if name not in fresh:
                print(f"WARN: {base_path.name}: run '{name}' missing")
                continue
            ratio = fresh[name] / base_ns
            compared += 1
            tag = "OK"
            if ratio > args.fail_ratio:
                tag = "FAIL"
                failures.append((name, ratio))
            elif ratio > 1.25:
                tag = "WARN"
            print(
                f"{tag:>4}  {name:<40} {base_ns:>12.1f} ns -> "
                f"{fresh[name]:>12.1f} ns  ({ratio:.2f}x)"
            )

    print(f"# compared {compared} runs against {args.baselines}")
    if failures:
        print(f"# {len(failures)} run(s) slowed down more than "
              f"{args.fail_ratio}x:")
        for name, ratio in failures:
            print(f"#   {name}: {ratio:.2f}x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
