/**
 * @file
 * Reproduces paper Table 1: "A study of popular RL algorithms" —
 * per-algorithm environment, model size, and training iterations,
 * with our substitute environments and local model sizes alongside.
 */

#include <iostream>

#include "common.hh"
#include "rl/model_zoo.hh"

using namespace isw;

int
main(int argc, char **argv)
{
    bench::initBench(argc, argv);
    bench::printHeader("Table 1 — study of popular RL algorithms");

    harness::Table t({"RL Algorithm", "Paper Env", "Local Env",
                      "Model Size (paper)", "Model Size (local)",
                      "Training Iteration (paper)"});
    for (const auto &spec : rl::benchmarks()) {
        auto agent = rl::makeAgent(spec.algo, spec.config, 1, 2);
        const double paper_kb =
            static_cast<double>(spec.paper_model_bytes) / 1024.0;
        const double local_kb =
            static_cast<double>(agent->paramCount()) * 4.0 / 1024.0;
        t.row({rl::algoName(spec.algo), spec.paper_env, spec.local_env,
               paper_kb >= 1024.0
                   ? harness::fmt(paper_kb / 1024.0, 2) + " MB"
                   : harness::fmt(paper_kb, 2) + " KB",
               harness::fmt(local_kb, 2) + " KB",
               harness::fmtSci(
                   static_cast<double>(spec.paper_iterations))});
    }
    t.print();

    std::cout << "\nThe local models are laptop-scale learnable stand-ins;"
              << "\nthe transport carries the paper-sized wire footprint"
              << "\n(DESIGN.md section 2).\n";
    bench::writeReport("table1_models");
    return 0;
}
