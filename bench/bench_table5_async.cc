/**
 * @file
 * Reproduces paper Table 5: asynchronous training — number of
 * iterations (weight updates), per-iteration time, end-to-end time,
 * and final average reward for Async PS vs Async iSwitch, both under
 * the same staleness bound S = 3.
 *
 * Unlike the synchronous case, the two async strategies genuinely
 * diverge (different staleness distributions), so both run real
 * training; per-iteration times come from paper-wire timing runs.
 */

#include <iostream>

#include "common.hh"

using namespace isw;

int
main(int argc, char **argv)
{
    bench::initBench(argc, argv);
    bench::printHeader("Table 5 — asynchronous training comparison (S=3)");

    std::vector<harness::ExperimentSpec> specs;
    for (auto algo : bench::kAlgos) {
        for (auto k : {dist::StrategyKind::kAsyncPs,
                       dist::StrategyKind::kAsyncIswitch}) {
            specs.push_back(harness::learningSpec(algo, k));
            specs.push_back(harness::timingSpec(algo, k));
        }
    }
    bench::prefetch(specs);

    harness::Table t(
        {"Benchmark", "PS iters", "iSW iters", "iter reduction",
         "PS per-iter (ms)", "iSW per-iter (ms)", "PS e2e (s)",
         "iSW e2e (s)", "speedup", "paper", "rewards PS/iSW"});

    for (auto algo : bench::kAlgos) {
        const dist::RunResult &ps = bench::runner().run(
            harness::learningSpec(algo, dist::StrategyKind::kAsyncPs));
        const dist::RunResult &isw = bench::runner().run(
            harness::learningSpec(algo, dist::StrategyKind::kAsyncIswitch));

        const double ps_periter =
            bench::perIterMs(algo, dist::StrategyKind::kAsyncPs);
        const double isw_periter =
            bench::perIterMs(algo, dist::StrategyKind::kAsyncIswitch);
        const double ps_e2e =
            static_cast<double>(ps.iterations) * ps_periter / 1000.0;
        const double isw_e2e =
            static_cast<double>(isw.iterations) * isw_periter / 1000.0;

        t.row({rl::algoName(algo),
               harness::fmtSci(static_cast<double>(ps.iterations)),
               harness::fmtSci(static_cast<double>(isw.iterations)),
               harness::fmt(
                   (1.0 - static_cast<double>(isw.iterations) /
                              static_cast<double>(ps.iterations)) *
                       100.0,
                   1) + "%",
               harness::fmt(ps_periter, 2), harness::fmt(isw_periter, 2),
               harness::fmt(ps_e2e, 2), harness::fmt(isw_e2e, 2),
               bench::speedupStr(ps_e2e / isw_e2e),
               bench::speedupStr(harness::paperAsyncSpeedup(algo)),
               harness::fmt(ps.final_avg_reward, 2) + "/" +
                   harness::fmt(isw.final_avg_reward, 2)});
    }
    t.print();

    harness::banner("Paper Table 5 (for reference)");
    harness::Table p({"Benchmark", "PS iters", "iSW iters",
                      "PS per-iter (ms)", "iSW per-iter (ms)", "PS (hrs)",
                      "iSW (hrs)"});
    for (const auto &row : harness::paperAsyncTable()) {
        p.row({rl::algoName(row.algo), harness::fmtSci(row.ps_iterations),
               harness::fmtSci(row.isw_iterations),
               harness::fmt(row.ps_periter_ms, 2),
               harness::fmt(row.isw_periter_ms, 2),
               harness::fmt(row.ps_hours, 2),
               harness::fmt(row.isw_hours, 2)});
    }
    p.print();
    bench::writeReport("table5_async");
    return 0;
}
