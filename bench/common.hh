/**
 * @file
 * Shared helpers for the table/figure reproduction binaries.
 *
 * Every bench declares a batch of harness::ExperimentSpecs, submits
 * it to the process-wide Runner (parallel across isolated
 * Simulations, memoized, deduplicated), then consumes RunResults to
 * build its tables. Finish with bench::writeReport(<name>) so the
 * machine-readable BENCH_<name>.json lands next to the human output.
 */

#ifndef ISW_BENCH_COMMON_HH
#define ISW_BENCH_COMMON_HH

#include <array>
#include <string>
#include <vector>

#include "harness/calibration.hh"
#include "harness/cli.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"
#include "harness/runner.hh"

namespace isw::bench {

/** All four paper benchmarks in Table 1 order. */
inline const std::array<rl::Algo, 4> kAlgos{rl::Algo::kDqn, rl::Algo::kA2c,
                                            rl::Algo::kPpo, rl::Algo::kDdpg};

/** The three synchronous strategies in paper order. */
inline const std::array<dist::StrategyKind, 3> kSyncStrategies{
    dist::StrategyKind::kSyncPs, dist::StrategyKind::kSyncAllReduce,
    dist::StrategyKind::kSyncIswitch};

/**
 * Parse the standard bench command line (`--jobs N` plus
 * @p extra_known flags) and configure the shared runner before first
 * use. Returns the parsed Cli for bench-specific flags.
 */
harness::Cli initBench(int argc, const char *const *argv,
                       std::vector<std::string> extra_known = {});

/** The process-wide experiment runner (created on first use). */
harness::Runner &runner();

/** Submit a batch for parallel execution; results stay memoized. */
void prefetch(const std::vector<harness::ExperimentSpec> &specs);

/** Per-iteration ms of the standard paper-wire timing run (memoized). */
double perIterMs(rl::Algo algo, dist::StrategyKind k,
                 std::size_t workers = 4, bool tree = false);

/** Full result of the standard timing run (memoized). */
const dist::RunResult &timingResult(rl::Algo algo, dist::StrategyKind k,
                                    std::size_t workers = 4,
                                    bool tree = false);

/** Emit BENCH_<name>.json describing every run this process made. */
void writeReport(const std::string &name);

/** Print the standard bench header (scale mode, jobs, etc.). */
void printHeader(const std::string &what);

/** "x.xx" ratio formatting with a trailing 'x'. */
std::string speedupStr(double s);

/**
 * Deprecated shim over the shared Runner for out-of-tree callers of
 * the old stringly-keyed cache. Runs are memoized process-wide, so
 * distinct TimingCache instances now share results.
 */
class [[deprecated(
    "use bench::runner() / bench::perIterMs / bench::timingResult")]]
TimingCache
{
  public:
    /** Per-iteration milliseconds for a paper-wire timing run. */
    double
    perIterMs(rl::Algo algo, dist::StrategyKind k, std::size_t workers = 4,
              bool tree = false)
    {
        return bench::perIterMs(algo, k, workers, tree);
    }

    /** Full result of the cached timing run. */
    const dist::RunResult &
    result(rl::Algo algo, dist::StrategyKind k, std::size_t workers = 4,
           bool tree = false)
    {
        return bench::timingResult(algo, k, workers, tree);
    }
};

} // namespace isw::bench

#endif // ISW_BENCH_COMMON_HH
