/**
 * @file
 * Shared helpers for the table/figure reproduction binaries.
 */

#ifndef ISW_BENCH_COMMON_HH
#define ISW_BENCH_COMMON_HH

#include <map>
#include <string>

#include "harness/calibration.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"

namespace isw::bench {

/** All four paper benchmarks in Table 1 order. */
inline const std::array<rl::Algo, 4> kAlgos{rl::Algo::kDqn, rl::Algo::kA2c,
                                            rl::Algo::kPpo, rl::Algo::kDdpg};

/** The three synchronous strategies in paper order. */
inline const std::array<dist::StrategyKind, 3> kSyncStrategies{
    dist::StrategyKind::kSyncPs, dist::StrategyKind::kSyncAllReduce,
    dist::StrategyKind::kSyncIswitch};

/** Cache of timing runs keyed by (algo, strategy, workers, tree). */
class TimingCache
{
  public:
    /** Per-iteration milliseconds for a paper-wire timing run. */
    double perIterMs(rl::Algo algo, dist::StrategyKind k,
                     std::size_t workers = 4, bool tree = false);

    /** Full result of the cached timing run. */
    const dist::RunResult &result(rl::Algo algo, dist::StrategyKind k,
                                  std::size_t workers = 4,
                                  bool tree = false);

  private:
    std::map<std::string, dist::RunResult> cache_;
};

/** Print the standard bench header (scale mode etc.). */
void printHeader(const std::string &what);

/** "x.xx" ratio formatting with a trailing 'x'. */
std::string speedupStr(double s);

} // namespace isw::bench

#endif // ISW_BENCH_COMMON_HH
