/**
 * @file
 * Reproduces paper Figure 15: scalability of PPO and DDPG training —
 * sync (PS/AR/iSW) and async (PS/iSW) — with 4, 6, 9, and 12 workers
 * on the rack-scale topology (racks of 3 under a core switch, as in
 * the paper's emulation setup, §5.3).
 *
 * Speedup(N) = end-to-end(4 workers) / end-to-end(N workers), with a
 * fixed total sample budget: N workers collect N trajectories per
 * iteration, so iterations(N) = iterations(4) x 4/N, and per-iteration
 * times come from paper-wire timing runs on the tree topology. The
 * "Ideal" column is N/4.
 */

#include <iostream>
#include <map>

#include "common.hh"

using namespace isw;

namespace {

const std::array<std::size_t, 4> kWorkerCounts{4, 6, 9, 12};

void
panel(rl::Algo algo, const std::vector<dist::StrategyKind> &strategies,
      const char *title)
{
    harness::banner(std::string(rl::algoName(algo)) + " — " + title);
    std::vector<std::string> headers{"Workers"};
    for (auto k : strategies)
        headers.push_back(dist::strategyName(k));
    headers.push_back("Ideal");
    harness::Table t(headers);

    std::map<dist::StrategyKind, double> base;
    for (auto k : strategies)
        base[k] = bench::perIterMs(algo, k, 4, /*tree=*/true);

    for (std::size_t n : kWorkerCounts) {
        std::vector<std::string> row{std::to_string(n)};
        for (auto k : strategies) {
            const double periter = bench::perIterMs(algo, k, n, true);
            // Fixed total gradient-sample budget G. One Async PS
            // update consumes one gradient (updates = G); every other
            // strategy's update consumes N gradients (updates = G/N).
            const double per_update_samples =
                k == dist::StrategyKind::kAsyncPs
                    ? 1.0
                    : static_cast<double>(n);
            const double t_n = periter / per_update_samples;
            const double t_4 =
                base[k] / (k == dist::StrategyKind::kAsyncPs ? 1.0 : 4.0);
            row.push_back(bench::speedupStr(t_4 / t_n));
        }
        row.push_back(bench::speedupStr(static_cast<double>(n) / 4.0));
        t.row(std::move(row));
    }
    t.print();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::initBench(argc, argv);
    bench::printHeader("Figure 15 — rack-scale scalability (racks of 3)");

    const std::vector<dist::StrategyKind> sync{
        dist::StrategyKind::kSyncPs, dist::StrategyKind::kSyncAllReduce,
        dist::StrategyKind::kSyncIswitch};
    const std::vector<dist::StrategyKind> async_k{
        dist::StrategyKind::kAsyncPs, dist::StrategyKind::kAsyncIswitch};

    // The full sweep: 5 strategies x 4 worker counts x 2 algorithms,
    // all independent tree-topology timing runs.
    std::vector<harness::ExperimentSpec> specs;
    for (auto algo : {rl::Algo::kPpo, rl::Algo::kDdpg}) {
        for (const auto &group : {sync, async_k})
            for (auto k : group)
                for (std::size_t n : kWorkerCounts)
                    specs.push_back(
                        harness::timingSpec(algo, k, n, /*tree=*/true));
    }
    bench::prefetch(specs);

    panel(rl::Algo::kPpo, sync, "synchronous (Fig. 15a)");
    panel(rl::Algo::kPpo, async_k, "asynchronous (Fig. 15b)");
    panel(rl::Algo::kDdpg, sync, "synchronous (Fig. 15c)");
    panel(rl::Algo::kDdpg, async_k, "asynchronous (Fig. 15d)");

    std::cout << "\nExpected shape (paper): AR scales worst (hop count"
              << "\nlinear in N), PS second (central bottleneck), iSwitch"
              << "\nbest via hierarchical in-switch aggregation; async"
              << "\niSwitch approaches linear speedup.\n";
    bench::writeReport("fig15_scalability");
    return 0;
}
