/**
 * @file
 * Reproduces paper Figure 15: scalability of PPO and DDPG training —
 * sync (PS/AR/iSW) and async (PS/iSW) — on the rack-scale topology
 * (racks of `per_rack` workers under a core switch, as in the paper's
 * emulation setup, §5.3). The default geometry (racks of 3, worker
 * counts 4/6/9/12) is the paper's; `--per-rack N` rescales the rack
 * and the swept worker counts (per_rack+1, 2·per_rack, 3·per_rack,
 * 4·per_rack) together.
 *
 * Speedup(N) = end-to-end(base workers) / end-to-end(N workers), with
 * a fixed total sample budget: N workers collect N trajectories per
 * iteration, so iterations(N) = iterations(base) x base/N, and
 * per-iteration times come from paper-wire timing runs on the tree
 * topology. The "Ideal" column is N/base.
 *
 * A final multi-rack panel takes one point beyond the two-layer tree:
 * 8 racks x 8 workers (2 pods of 4 racks) on the ToR-AGG-Core
 * fat-tree, comparing per-iteration time against the two-layer tree
 * at the same worker count, then runs the async strategies on that
 * fat-tree under both the serial and the domain-sharded engine.
 * `--fat-racks/--fat-per-rack/--fat-pod` reshape it.
 */

#include <iostream>
#include <map>

#include "common.hh"

using namespace isw;

namespace {

std::array<std::size_t, 4>
workerCounts(std::size_t per_rack)
{
    return {per_rack + 1, 2 * per_rack, 3 * per_rack, 4 * per_rack};
}

void
panel(rl::Algo algo, const std::vector<dist::StrategyKind> &strategies,
      const char *title, std::size_t per_rack)
{
    harness::banner(std::string(rl::algoName(algo)) + " — " + title);
    std::vector<std::string> headers{"Workers"};
    for (auto k : strategies)
        headers.push_back(dist::strategyName(k));
    headers.push_back("Ideal");
    harness::Table t(headers);

    const auto counts = workerCounts(per_rack);
    const double base_n = static_cast<double>(counts[0]);
    std::map<dist::StrategyKind, double> base;
    harness::FabricSpec tree;
    tree.tree = true;
    tree.per_rack = per_rack;
    const auto per_iter = [&](dist::StrategyKind k, std::size_t n) {
        return bench::runner()
            .run(harness::timingSpec(algo, k, n, tree))
            .perIterationMs();
    };
    for (auto k : strategies)
        base[k] = per_iter(k, counts[0]);

    for (std::size_t n : counts) {
        std::vector<std::string> row{std::to_string(n)};
        for (auto k : strategies) {
            const double periter = per_iter(k, n);
            // Fixed total gradient-sample budget G. One Async PS
            // update consumes one gradient (updates = G); every other
            // strategy's update consumes N gradients (updates = G/N).
            const double per_update_samples =
                k == dist::StrategyKind::kAsyncPs
                    ? 1.0
                    : static_cast<double>(n);
            const double t_n = periter / per_update_samples;
            const double t_b =
                base[k] /
                (k == dist::StrategyKind::kAsyncPs ? 1.0 : base_n);
            row.push_back(bench::speedupStr(t_b / t_n));
        }
        row.push_back(
            bench::speedupStr(static_cast<double>(n) / base_n));
        t.row(std::move(row));
    }
    t.print();
}

void
fatTreePanel(std::size_t racks, std::size_t per_rack, std::size_t pod)
{
    const std::size_t workers = racks * per_rack;
    harness::banner("Multi-rack point — " + std::to_string(racks) +
                    " racks x " + std::to_string(per_rack) +
                    " workers (fat-tree, pods of " + std::to_string(pod) +
                    ")");
    harness::Table t({"Algo", "Fabric", "Workers", "ms/iter"});
    harness::FabricSpec tree;
    tree.tree = true;
    tree.per_rack = per_rack;
    harness::FabricSpec fat;
    fat.fat_tree = true;
    fat.per_rack = per_rack;
    fat.racks_per_pod = pod;
    const auto ms_for = [&](const harness::FabricSpec &fabric,
                            rl::Algo algo) {
        return bench::runner()
            .run(harness::timingSpec(
                algo, dist::StrategyKind::kSyncIswitch, workers, fabric))
            .perIterationMs();
    };
    for (auto algo : {rl::Algo::kPpo, rl::Algo::kDdpg}) {
        t.row({rl::algoName(algo), "tree", std::to_string(workers),
               harness::fmt(ms_for(tree, algo), 3)});
        t.row({rl::algoName(algo), "fat-tree", std::to_string(workers),
               harness::fmt(ms_for(fat, algo), 3)});
    }
    t.print();

    // Async on the same fat-tree, serial engine vs domain-sharded
    // engine. ms/iter is simulated (engine-invariant up to the async
    // snapshot semantics); the events/s column is the wall-clock
    // figure of merit for the parallel engine.
    harness::banner("Sharded async on the fat-tree — serial vs sharded");
    harness::Table s(
        {"Strategy", "Engine", "ms/iter", "sim events/s", "speedup"});
    harness::FabricSpec fat_sharded = fat;
    fat_sharded.shard = true;
    const auto eps = [](const dist::RunResult &r) {
        const auto it = r.perf.find("events_per_sec");
        return it == r.perf.end() ? 0.0 : it->second;
    };
    for (auto k : {dist::StrategyKind::kAsyncPs,
                   dist::StrategyKind::kAsyncIswitch}) {
        const dist::RunResult &serial = bench::runner().run(
            harness::timingSpec(rl::Algo::kDqn, k, workers, fat));
        const dist::RunResult &sharded = bench::runner().run(
            harness::timingSpec(rl::Algo::kDqn, k, workers, fat_sharded));
        s.row({dist::strategyName(k), "serial",
               harness::fmt(serial.perIterationMs(), 3),
               harness::fmt(eps(serial), 0), "1.00x"});
        s.row({dist::strategyName(k), "sharded",
               harness::fmt(sharded.perIterationMs(), 3),
               harness::fmt(eps(sharded), 0),
               eps(serial) > 0.0
                   ? bench::speedupStr(eps(sharded) / eps(serial))
                   : "n/a"});
    }
    s.print();
}

} // namespace

int
main(int argc, char **argv)
{
    harness::Cli cli = bench::initBench(
        argc, argv, {"per-rack", "fat-racks", "fat-per-rack", "fat-pod"});
    const auto per_rack =
        static_cast<std::size_t>(cli.getInt("per-rack", 3));
    const auto fat_racks =
        static_cast<std::size_t>(cli.getInt("fat-racks", 8));
    const auto fat_per_rack =
        static_cast<std::size_t>(cli.getInt("fat-per-rack", 8));
    const auto fat_pod = static_cast<std::size_t>(cli.getInt("fat-pod", 4));
    if (per_rack == 0 || fat_racks == 0 || fat_per_rack == 0 ||
        fat_pod == 0)
        throw std::invalid_argument(
            "bench_fig15_scalability: --per-rack/--fat-racks/"
            "--fat-per-rack/--fat-pod must be >= 1");
    bench::printHeader("Figure 15 — rack-scale scalability (racks of " +
                       std::to_string(per_rack) + ")");

    const std::vector<dist::StrategyKind> sync{
        dist::StrategyKind::kSyncPs, dist::StrategyKind::kSyncAllReduce,
        dist::StrategyKind::kSyncIswitch};
    const std::vector<dist::StrategyKind> async_k{
        dist::StrategyKind::kAsyncPs, dist::StrategyKind::kAsyncIswitch};

    // The full sweep: 5 strategies x 4 worker counts x 2 algorithms,
    // all independent tree-topology timing runs, plus the multi-rack
    // fat-tree points.
    std::vector<harness::ExperimentSpec> specs;
    harness::FabricSpec tree;
    tree.tree = true;
    tree.per_rack = per_rack;
    for (auto algo : {rl::Algo::kPpo, rl::Algo::kDdpg}) {
        for (const auto &group : {sync, async_k})
            for (auto k : group)
                for (std::size_t n : workerCounts(per_rack))
                    specs.push_back(harness::timingSpec(algo, k, n, tree));
    }
    bench::prefetch(specs);

    panel(rl::Algo::kPpo, sync, "synchronous (Fig. 15a)", per_rack);
    panel(rl::Algo::kPpo, async_k, "asynchronous (Fig. 15b)", per_rack);
    panel(rl::Algo::kDdpg, sync, "synchronous (Fig. 15c)", per_rack);
    panel(rl::Algo::kDdpg, async_k, "asynchronous (Fig. 15d)", per_rack);

    fatTreePanel(fat_racks, fat_per_rack, fat_pod);

    std::cout << "\nExpected shape (paper): AR scales worst (hop count"
              << "\nlinear in N), PS second (central bottleneck), iSwitch"
              << "\nbest via hierarchical in-switch aggregation; async"
              << "\niSwitch approaches linear speedup.\n";
    bench::writeReport("fig15_scalability");
    return 0;
}
