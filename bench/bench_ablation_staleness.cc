/**
 * @file
 * Ablation (paper §4.1 design choice): the effect of the staleness
 * bound S on asynchronous iSwitch. S=3 is the paper's operating
 * point; tighter bounds skip more gradients, looser bounds admit
 * staler ones.
 */

#include <iostream>

#include "common.hh"
#include "dist/iswitch_async.hh"

using namespace isw;

int
main()
{
    bench::printHeader("Ablation — staleness bound S in Async iSwitch");

    harness::Table t({"S", "updates", "committed", "skipped", "skip rate",
                      "final reward"});
    for (std::uint32_t s : {0u, 1u, 3u, 8u}) {
        dist::JobConfig cfg = harness::learningJob(
            rl::Algo::kPpo, dist::StrategyKind::kAsyncIswitch);
        cfg.staleness_bound = s;
        cfg.stop.target_reward = 1e18; // fixed budget: compare rewards
        cfg.stop.max_iterations = 600;
        // Stress the aggregation path so staleness actually builds:
        // a DQN-sized wire footprint over slow 1 GbE links makes the
        // GA stage lag the pipelined LGC stage.
        cfg.wire_model_bytes = 3 * 1024 * 1024;
        cfg.cluster.edge_link.bandwidth_bps = 1e9;
        auto job = std::make_unique<dist::AsyncIswitchJob>(cfg);
        dist::AsyncIswitchJob *raw = job.get();
        const dist::RunResult res = job->run();
        const double total = static_cast<double>(
            raw->gradientsCommitted() + raw->gradientsSkipped());
        t.row({std::to_string(s), std::to_string(res.iterations),
               std::to_string(raw->gradientsCommitted()),
               std::to_string(raw->gradientsSkipped()),
               harness::fmt(100.0 * raw->gradientsSkipped() /
                                std::max(total, 1.0),
                            1) + "%",
               harness::fmt(res.final_avg_reward, 2)});
    }
    t.print();

    std::cout << "\nThe paper bounds staleness at S=3: loose enough that"
              << "\nhealthy pipelines skip almost nothing, tight enough to"
              << "\nprotect convergence when aggregation lags.\n";
    return 0;
}
