/**
 * @file
 * Ablation (paper §4.1 design choice): the effect of the staleness
 * bound S on asynchronous iSwitch. S=3 is the paper's operating
 * point; tighter bounds skip more gradients, looser bounds admit
 * staler ones.
 */

#include <algorithm>
#include <iostream>

#include "common.hh"

using namespace isw;

namespace {

harness::ExperimentSpec
stalenessSpec(std::uint32_t s)
{
    harness::ExperimentSpec spec = harness::learningSpec(
        rl::Algo::kPpo, dist::StrategyKind::kAsyncIswitch);
    spec.name += "/S" + std::to_string(s);
    spec.tags.push_back("staleness-sweep");
    spec.config.staleness_bound = s;
    spec.config.stop.target_reward = 1e18; // fixed budget: compare rewards
    spec.config.stop.max_iterations = 600;
    // Stress the aggregation path so staleness actually builds:
    // a DQN-sized wire footprint over slow 1 GbE links makes the
    // GA stage lag the pipelined LGC stage.
    spec.config.wire_model_bytes = 3 * 1024 * 1024;
    spec.config.cluster.edge_link.bandwidth_bps = 1e9;
    return spec;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::initBench(argc, argv);
    bench::printHeader("Ablation — staleness bound S in Async iSwitch");

    const std::array<std::uint32_t, 4> kBounds{0u, 1u, 3u, 8u};
    std::vector<harness::ExperimentSpec> specs;
    for (std::uint32_t s : kBounds)
        specs.push_back(stalenessSpec(s));
    bench::prefetch(specs);

    harness::Table t({"S", "updates", "committed", "skipped", "skip rate",
                      "final reward"});
    for (std::uint32_t s : kBounds) {
        const dist::RunResult &res = bench::runner().run(stalenessSpec(s));
        const double committed = res.extras.at("gradients_committed");
        const double skipped = res.extras.at("gradients_skipped");
        const double total = committed + skipped;
        t.row({std::to_string(s), std::to_string(res.iterations),
               harness::fmt(committed, 0), harness::fmt(skipped, 0),
               harness::fmt(100.0 * skipped / std::max(total, 1.0), 1) +
                   "%",
               harness::fmt(res.final_avg_reward, 2)});
    }
    t.print();

    std::cout << "\nThe paper bounds staleness at S=3: loose enough that"
              << "\nhealthy pipelines skip almost nothing, tight enough to"
              << "\nprotect convergence when aggregation lags.\n";
    bench::writeReport("ablation_staleness");
    return 0;
}
