/**
 * @file
 * Reproduces paper Figure 13: DQN training curves (average episode
 * reward vs wall-clock time) for the three synchronous strategies.
 *
 * One real learning run produces the reward-vs-iteration curve (the
 * strategies are equivalent in iteration space); each strategy's
 * paper-wire per-iteration time maps iterations to its wall clock —
 * iSW reaches the same reward level in a fraction of the time.
 */

#include <iostream>

#include "common.hh"

using namespace isw;

namespace {

harness::ExperimentSpec
curveSpec()
{
    harness::ExperimentSpec spec = harness::learningSpec(
        rl::Algo::kDqn, dist::StrategyKind::kSyncIswitch);
    spec.name += "/curve50";
    spec.tags.push_back("fig13-curve");
    spec.config.curve_every = 50;
    return spec;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::initBench(argc, argv);
    bench::printHeader("Figure 13 — sync DQN training curves (reward vs time)");

    std::vector<harness::ExperimentSpec> specs{curveSpec()};
    for (auto k : bench::kSyncStrategies)
        specs.push_back(harness::timingSpec(rl::Algo::kDqn, k));
    bench::prefetch(specs);

    const dist::RunResult &lr = bench::runner().run(curveSpec());
    const double ps_ms =
        bench::perIterMs(rl::Algo::kDqn, dist::StrategyKind::kSyncPs);
    const double ar_ms =
        bench::perIterMs(rl::Algo::kDqn, dist::StrategyKind::kSyncAllReduce);
    const double isw_ms =
        bench::perIterMs(rl::Algo::kDqn, dist::StrategyKind::kSyncIswitch);

    harness::Table t({"iteration", "reward", "PS time (s)", "AR time (s)",
                      "iSW time (s)"});
    const std::size_t curve_every = 50;
    std::size_t iter = 0;
    for (const auto &p : lr.reward_curve.points()) {
        iter += curve_every;
        t.row({std::to_string(iter), harness::fmt(p.v, 2),
               harness::fmt(iter * ps_ms / 1000.0, 1),
               harness::fmt(iter * ar_ms / 1000.0, 1),
               harness::fmt(iter * isw_ms / 1000.0, 1)});
    }
    t.print();

    std::cout << "\nfinal reward " << harness::fmt(lr.final_avg_reward, 2)
              << (lr.reached_target ? " (target reached)" : " (cap)")
              << "; per-iteration ms: PS " << harness::fmt(ps_ms, 2)
              << ", AR " << harness::fmt(ar_ms, 2) << ", iSW "
              << harness::fmt(isw_ms, 2)
              << "\niSW reaches any reward level "
              << harness::fmt(ps_ms / isw_ms, 2)
              << "x sooner than PS in wall-clock time (paper Figure 13"
              << "\nshows the same horizontally compressed curve).\n";
    bench::writeReport("fig13_sync_curves");
    return 0;
}
