/**
 * @file
 * Extension experiment (related-work direction, paper §7 cites
 * GradiVeQ): what would half-precision gradient transport buy the
 * three synchronous strategies? Two measurements:
 *
 *  1. Timing: per-iteration time with the fp16 pipeline stage
 *     (DESIGN.md §14) halving the wire footprint — the bandwidth
 *     side of the trade.
 *  2. Fidelity: single-node training with fp16-round-tripped
 *     gradients vs full precision — the accuracy side.
 */

#include <iostream>

#include "common.hh"
#include "ml/quantize.hh"
#include "rl/model_zoo.hh"

using namespace isw;

namespace {

harness::ExperimentSpec
wireSpec(rl::Algo algo, dist::StrategyKind k, bool fp16)
{
    harness::ExperimentSpec spec = harness::timingSpec(algo, k);
    spec.name += fp16 ? "/fp16" : "/fp32";
    spec.tags.push_back("fp16-sweep");
    if (fp16)
        spec.config.precision = net::Precision::kFp16;
    spec.config.stop.max_iterations = 20;
    return spec;
}

double
periterHalved(rl::Algo algo, dist::StrategyKind k, bool fp16)
{
    return bench::runner().run(wireSpec(algo, k, fp16)).perIterationMs();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::initBench(argc, argv);
    bench::printHeader("Ablation — fp16 gradient wire (extension)");

    std::vector<harness::ExperimentSpec> specs;
    for (auto k : bench::kSyncStrategies) {
        specs.push_back(wireSpec(rl::Algo::kDqn, k, false));
        specs.push_back(wireSpec(rl::Algo::kDqn, k, true));
    }
    bench::prefetch(specs);

    harness::banner("Timing: per-iteration ms, fp32 wire vs fp16 wire (DQN)");
    {
        harness::Table t({"Strategy", "fp32 (ms)", "fp16 (ms)", "gain"});
        for (auto k : bench::kSyncStrategies) {
            const double full = periterHalved(rl::Algo::kDqn, k, false);
            const double half = periterHalved(rl::Algo::kDqn, k, true);
            t.row({dist::strategyName(k), harness::fmt(full, 2),
                   harness::fmt(half, 2),
                   bench::speedupStr(full / half)});
        }
        t.print();
    }

    harness::banner("Fidelity: A2C reward after 700 updates");
    {
        auto train = [](bool fp16) {
            auto agent = rl::makeAgent(rl::Algo::kA2c,
                                       rl::specFor(rl::Algo::kA2c).config,
                                       31, 32);
            for (int i = 0; i < 700; ++i) {
                ml::Vec g = agent->computeGradient();
                if (fp16)
                    ml::quantizeInPlace(g);
                agent->applyAggregatedGradient(g, 1);
            }
            return agent->avgEpisodeReward(20);
        };
        harness::Table t({"Gradient precision", "reward"});
        t.row({"fp32", harness::fmt(train(false), 2)});
        t.row({"fp16 round-trip", harness::fmt(train(true), 2)});
        t.print();
    }

    std::cout << "\nHalving the wire mostly helps the strategies whose"
              << "\niteration is bandwidth-bound (PS, AR); iSwitch is"
              << "\nalready near the compute floor. Gradient fidelity is"
              << "\nessentially unharmed at these magnitudes — consistent"
              << "\nwith the compression literature the paper cites.\n";
    bench::writeReport("ablation_fp16");
    return 0;
}
