/**
 * @file
 * Ablation (DESIGN.md §2): the PS/AR baselines ride the framework
 * network stack while iSwitch speaks its raw protocol. This sweep
 * shows how the per-message host overhead moves the PS-vs-AR
 * crossover for a small model (the paper's PPO observation: AR is
 * bandwidth-optimal yet *slower* than PS for 40 KB gradients because
 * of its 2(N-1) per-step message costs).
 */

#include <iostream>

#include "common.hh"

using namespace isw;

namespace {

harness::ExperimentSpec
overheadSpec(dist::StrategyKind k, sim::TimeNs send_oh, sim::TimeNs recv_oh)
{
    harness::ExperimentSpec spec = harness::timingSpec(rl::Algo::kPpo, k);
    spec.name += "/oh" + std::to_string(send_oh / sim::kUsec) + "us";
    spec.tags.push_back("overhead-sweep");
    spec.config.overhead.send = send_oh;
    spec.config.overhead.recv = recv_oh;
    spec.config.stop.max_iterations = 25;
    return spec;
}

double
periterMs(dist::StrategyKind k, sim::TimeNs send_oh, sim::TimeNs recv_oh)
{
    return bench::runner()
        .run(overheadSpec(k, send_oh, recv_oh))
        .perIterationMs();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::initBench(argc, argv);
    bench::printHeader(
        "Ablation — per-message host overhead vs the AR/PS crossover (PPO)");

    const std::array<sim::TimeNs, 5> kOverheadsUs{25u, 100u, 400u, 1500u,
                                                  4000u};
    std::vector<harness::ExperimentSpec> specs{
        overheadSpec(dist::StrategyKind::kSyncIswitch, 30 * sim::kUsec,
                     20 * sim::kUsec)};
    for (sim::TimeNs oh_us : kOverheadsUs) {
        const sim::TimeNs send = oh_us * sim::kUsec;
        const sim::TimeNs recv = send * 2 / 3;
        specs.push_back(overheadSpec(dist::StrategyKind::kSyncPs, send,
                                     recv));
        specs.push_back(overheadSpec(dist::StrategyKind::kSyncAllReduce,
                                     send, recv));
    }
    bench::prefetch(specs);

    harness::Table t({"send/recv overhead (us)", "PS per-iter (ms)",
                      "AR per-iter (ms)", "AR vs PS", "iSW per-iter (ms)"});
    const double isw =
        periterMs(dist::StrategyKind::kSyncIswitch, 30 * sim::kUsec,
                  20 * sim::kUsec);
    for (sim::TimeNs oh_us : kOverheadsUs) {
        const sim::TimeNs send = oh_us * sim::kUsec;
        const sim::TimeNs recv = send * 2 / 3;
        const double ps = periterMs(dist::StrategyKind::kSyncPs, send, recv);
        const double ar =
            periterMs(dist::StrategyKind::kSyncAllReduce, send, recv);
        t.row({std::to_string(oh_us) + "/" + std::to_string(oh_us * 2 / 3),
               harness::fmt(ps, 2), harness::fmt(ar, 2),
               bench::speedupStr(ps / ar), harness::fmt(isw, 2)});
    }
    t.print();

    std::cout << "\nAR loses to PS once per-message costs dominate the tiny"
              << "\ntransfer — the paper's Table 3 PPO/DDPG rows (0.91x,"
              << "\n0.90x). iSwitch is unaffected: its raw protocol posts"
              << "\none message per iteration.\n";
    bench::writeReport("ablation_overheads");
    return 0;
}
