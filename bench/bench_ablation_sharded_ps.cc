/**
 * @file
 * Extension experiment: how much of iSwitch's advantage survives
 * against a *sharded* parameter server (the classic mitigation of the
 * central-link bottleneck the paper identifies in §2.3)? Sweeps the
 * shard count on the DQN and A2C wire sizes.
 */

#include <iostream>

#include "common.hh"

using namespace isw;

namespace {

harness::ExperimentSpec
shardSpec(rl::Algo algo, dist::StrategyKind k, std::size_t shards)
{
    harness::ExperimentSpec spec = harness::timingSpec(algo, k);
    spec.name += "/shards" + std::to_string(shards);
    spec.tags.push_back("shard-sweep");
    spec.config.ps_shards = shards;
    spec.config.stop.max_iterations = 20;
    return spec;
}

double
periter(rl::Algo algo, dist::StrategyKind k, std::size_t shards)
{
    return bench::runner().run(shardSpec(algo, k, shards)).perIterationMs();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::initBench(argc, argv);
    bench::printHeader(
        "Ablation — sharded parameter server vs in-switch aggregation");

    std::vector<harness::ExperimentSpec> specs;
    for (auto algo : {rl::Algo::kDqn, rl::Algo::kA2c}) {
        specs.push_back(shardSpec(algo, dist::StrategyKind::kSyncPs, 1));
        for (std::size_t shards : {2u, 4u, 8u})
            specs.push_back(
                shardSpec(algo, dist::StrategyKind::kSyncShardedPs, shards));
        specs.push_back(shardSpec(algo, dist::StrategyKind::kSyncIswitch, 1));
    }
    bench::prefetch(specs);

    for (auto algo : {rl::Algo::kDqn, rl::Algo::kA2c}) {
        harness::banner(std::string(rl::algoName(algo)) +
                        " per-iteration time (ms)");
        harness::Table t({"Configuration", "per-iter (ms)", "vs PS"});
        const double ps = periter(algo, dist::StrategyKind::kSyncPs, 1);
        t.row({"PS (1 server)", harness::fmt(ps, 2), "1.00x"});
        for (std::size_t shards : {2u, 4u, 8u}) {
            const double s =
                periter(algo, dist::StrategyKind::kSyncShardedPs, shards);
            t.row({"Sharded PS x" + std::to_string(shards),
                   harness::fmt(s, 2), bench::speedupStr(ps / s)});
        }
        const double isw =
            periter(algo, dist::StrategyKind::kSyncIswitch, 1);
        t.row({"iSwitch", harness::fmt(isw, 2),
               bench::speedupStr(ps / isw)});
        t.print();
    }

    std::cout
        << "\nSharding buys back bandwidth but still pays 4 network hops,"
        << "\nK x N framework messages, and whole-vector aggregation;"
        << "\nin-switch aggregation keeps 2 hops, raw-protocol overheads,"
        << "\nand packet-granularity overlap.\n";
    bench::writeReport("ablation_sharded_ps");
    return 0;
}
