/**
 * @file
 * Extension experiment: how much of iSwitch's advantage survives
 * against a *sharded* parameter server (the classic mitigation of the
 * central-link bottleneck the paper identifies in §2.3)? Sweeps the
 * shard count on the DQN and A2C wire sizes.
 */

#include <iostream>

#include "common.hh"

using namespace isw;

namespace {

double
periter(rl::Algo algo, dist::StrategyKind k, std::size_t shards)
{
    dist::JobConfig cfg = harness::timingJob(algo, k);
    cfg.ps_shards = shards;
    cfg.stop.max_iterations = 20;
    return dist::runJob(cfg).perIterationMs();
}

} // namespace

int
main()
{
    bench::printHeader(
        "Ablation — sharded parameter server vs in-switch aggregation");

    for (auto algo : {rl::Algo::kDqn, rl::Algo::kA2c}) {
        harness::banner(std::string(rl::algoName(algo)) +
                        " per-iteration time (ms)");
        harness::Table t({"Configuration", "per-iter (ms)", "vs PS"});
        const double ps = periter(algo, dist::StrategyKind::kSyncPs, 1);
        t.row({"PS (1 server)", harness::fmt(ps, 2), "1.00x"});
        for (std::size_t shards : {2u, 4u, 8u}) {
            const double s =
                periter(algo, dist::StrategyKind::kSyncShardedPs, shards);
            t.row({"Sharded PS x" + std::to_string(shards),
                   harness::fmt(s, 2), bench::speedupStr(ps / s)});
        }
        const double isw =
            periter(algo, dist::StrategyKind::kSyncIswitch, 1);
        t.row({"iSwitch", harness::fmt(isw, 2),
               bench::speedupStr(ps / isw)});
        t.print();
    }

    std::cout
        << "\nSharding buys back bandwidth but still pays 4 network hops,"
        << "\nK x N framework messages, and whole-vector aggregation;"
        << "\nin-switch aggregation keeps 2 hops, raw-protocol overheads,"
        << "\nand packet-granularity overlap.\n";
    return 0;
}
