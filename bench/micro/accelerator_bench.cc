/** @file Microbenchmarks: in-switch aggregation engine hot paths. */

#include <benchmark/benchmark.h>

#include "core/accelerator.hh"
#include "core/seg_buffer.hh"
#include "sim/simulation.hh"

namespace {

using namespace isw;

/** Raw per-packet accumulate cost at full MTU. */
void
BM_SegBufferAccumulate(benchmark::State &state)
{
    core::SegBufferPool pool;
    net::ChunkPayload chunk;
    chunk.seg = 0;
    chunk.wire_floats = 366;
    chunk.values.assign(366, 1.0f);
    std::uint64_t seg = 0;
    for (auto _ : state) {
        chunk.seg = seg++ % 64;
        benchmark::DoNotOptimize(pool.accumulate(chunk, 1u << 30));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            366 * 4);
}
BENCHMARK(BM_SegBufferAccumulate);

/** Full accelerator path: ingest -> event -> accumulate -> emit. */
void
BM_AcceleratorRound(benchmark::State &state)
{
    const auto workers = static_cast<std::uint32_t>(state.range(0));
    net::ChunkPayload chunk;
    chunk.seg = 0;
    chunk.wire_floats = 366;
    chunk.values.assign(366, 1.0f);
    for (auto _ : state) {
        state.PauseTiming();
        sim::Simulation s{1};
        core::Accelerator accel{s};
        accel.setThreshold(workers);
        std::size_t emitted = 0;
        accel.setEmit(
            [&emitted](std::uint64_t, core::SegState) { ++emitted; });
        state.ResumeTiming();
        for (std::uint32_t w = 0; w < workers; ++w)
            accel.ingest(chunk);
        s.run();
        benchmark::DoNotOptimize(emitted);
    }
}
BENCHMARK(BM_AcceleratorRound)->Arg(4)->Arg(12)->Arg(48);

/** Dedupe overhead (sync-mode loss recovery). */
void
BM_AcceleratorDedupe(benchmark::State &state)
{
    net::ChunkPayload chunk;
    chunk.seg = 0;
    chunk.wire_floats = 366;
    chunk.values.assign(366, 1.0f);
    for (auto _ : state) {
        state.PauseTiming();
        sim::Simulation s{1};
        core::Accelerator accel{s};
        accel.setThreshold(4);
        accel.setDedupeContributors(true);
        state.ResumeTiming();
        for (std::uint32_t w = 0; w < 4; ++w)
            accel.ingest(chunk, w);
        s.run();
    }
}
BENCHMARK(BM_AcceleratorDedupe);

} // namespace
