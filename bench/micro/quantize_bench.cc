/** @file Microbenchmarks: gradient wire codecs (DESIGN.md §14). */

#include <benchmark/benchmark.h>

#include "ml/quantize.hh"
#include "sim/random.hh"

namespace {

using namespace isw;

std::vector<float>
randomGrads(std::size_t n)
{
    sim::Rng rng(7);
    std::vector<float> v(n);
    for (auto &x : v)
        x = static_cast<float>(rng.uniform(-1.0, 1.0)) * 0.1f;
    return v;
}

void
BM_BlockExponent(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const std::vector<float> v = randomGrads(n);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            ml::blockExponent(v.data(), v.size(), 4));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BlockExponent)->Arg(1 << 12)->Arg(1 << 16);

void
BM_EncodeBlockInt32(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const std::vector<float> v = randomGrads(n);
    const int e = ml::blockExponent(v.data(), v.size(), 4);
    std::vector<float> wire(n);
    for (auto _ : state) {
        ml::encodeBlockInt32(v.data(), v.size(), e, wire.data());
        benchmark::DoNotOptimize(wire.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EncodeBlockInt32)->Arg(1 << 12)->Arg(1 << 16);

void
BM_DecodeBlockInt32(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const std::vector<float> v = randomGrads(n);
    const int e = ml::blockExponent(v.data(), v.size(), 4);
    std::vector<float> wire(n), out(n);
    ml::encodeBlockInt32(v.data(), v.size(), e, wire.data());
    for (auto _ : state) {
        ml::decodeBlockInt32(wire.data(), wire.size(), e, out.data());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DecodeBlockInt32)->Arg(1 << 12)->Arg(1 << 16);

void
BM_AddBlockInt32(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const std::vector<float> v = randomGrads(n);
    const int e = ml::blockExponent(v.data(), v.size(), 4);
    std::vector<float> wire(n), acc(n, 0.0f);
    ml::encodeBlockInt32(v.data(), v.size(), e, wire.data());
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            ml::addBlockInt32(acc.data(), wire.data(), n));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_AddBlockInt32)->Arg(1 << 12)->Arg(1 << 16);

void
BM_PackHalfWords(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const std::vector<float> v = randomGrads(n);
    std::vector<float> wire((n + 1) / 2);
    for (auto _ : state) {
        ml::packHalfWords(v.data(), v.size(), wire.data());
        benchmark::DoNotOptimize(wire.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PackHalfWords)->Arg(1 << 12)->Arg(1 << 16);

void
BM_UnpackHalfWords(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const std::vector<float> v = randomGrads(n);
    std::vector<float> wire((n + 1) / 2), out(n);
    ml::packHalfWords(v.data(), v.size(), wire.data());
    for (auto _ : state) {
        ml::unpackHalfWords(wire.data(), n, out.data());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_UnpackHalfWords)->Arg(1 << 12)->Arg(1 << 16);

} // namespace
