/**
 * @file
 * Shared main for the micro benchmarks: runs Google Benchmark with the
 * normal console output, then writes a `BENCH_micro_<name>.json`
 * report in the harness::json schema so micro-bench results land in
 * the same trajectory as the macro benches (and CI can compare them
 * against bench/baselines/).
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "harness/json.hh"

namespace {

/** Console reporter that also captures every run for the JSON report. */
class CaptureReporter : public benchmark::ConsoleReporter
{
  public:
    std::vector<Run> captured;

    void
    ReportRuns(const std::vector<Run> &report) override
    {
        for (const Run &r : report)
            captured.push_back(r);
        ConsoleReporter::ReportRuns(report);
    }
};

/** "path/to/bench_micro_eventqueue" -> "micro_eventqueue". */
std::string
benchName(const char *argv0)
{
    std::string name = argv0;
    const std::size_t slash = name.find_last_of('/');
    if (slash != std::string::npos)
        name = name.substr(slash + 1);
    const std::string prefix = "bench_";
    if (name.rfind(prefix, 0) == 0)
        name = name.substr(prefix.size());
    return name;
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;

    CaptureReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);

    namespace json = isw::harness::json;
    const std::string name = benchName(argv[0]);
    json::Value root = json::Value::object();
    root["bench"] = name;
    root["schema_version"] = 1;
    json::Value runs = json::Value::array();
    for (const auto &r : reporter.captured) {
        if (r.error_occurred)
            continue;
        json::Value run = json::Value::object();
        run["name"] = r.benchmark_name();
        run["iterations"] = static_cast<std::uint64_t>(r.iterations);
        // Adjusted = per-iteration, in the run's declared time unit;
        // normalize to nanoseconds so reports compare across benches.
        const double unit_ns =
            benchmark::GetTimeUnitMultiplier(r.time_unit) / 1e9;
        run["real_time_ns"] = r.GetAdjustedRealTime() / unit_ns;
        run["cpu_time_ns"] = r.GetAdjustedCPUTime() / unit_ns;
        if (!r.counters.empty()) {
            json::Value counters = json::Value::object();
            for (const auto &[key, counter] : r.counters)
                counters[key] = counter.value;
            run["counters"] = std::move(counters);
        }
        runs.push(std::move(run));
    }
    root["runs"] = std::move(runs);

    const std::string path = "./BENCH_" + name + ".json";
    std::ofstream out(path);
    out << root.dump(2) << "\n";
    out.close();
    std::printf("# wrote %s (%zu runs)\n", path.c_str(),
                root.find("runs")->size());

    benchmark::Shutdown();
    return 0;
}
