/** @file Microbenchmarks: discrete-event kernel throughput. */

#include <benchmark/benchmark.h>

#include "sim/event_queue.hh"
#include "sim/random.hh"

namespace {

using namespace isw::sim;

void
BM_ScheduleRun(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        EventQueue q;
        std::size_t fired = 0;
        for (std::size_t i = 0; i < n; ++i)
            q.schedule(i, [&fired] { ++fired; });
        q.runAll();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ScheduleRun)->Arg(1024)->Arg(65536);

void
BM_RandomOrderSchedule(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(7);
    for (auto _ : state) {
        EventQueue q;
        std::size_t fired = 0;
        for (std::size_t i = 0; i < n; ++i) {
            q.schedule(static_cast<TimeNs>(rng.uniformInt(0, 1 << 20)),
                       [&fired] { ++fired; });
        }
        q.runAll();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RandomOrderSchedule)->Arg(65536);

void
BM_CancelHeavy(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue q;
        std::vector<EventId> ids;
        ids.reserve(4096);
        for (int i = 0; i < 4096; ++i)
            ids.push_back(q.schedule(static_cast<TimeNs>(i), [] {}));
        for (std::size_t i = 0; i < ids.size(); i += 2)
            q.cancel(ids[i]);
        q.runAll();
    }
}
BENCHMARK(BM_CancelHeavy);

void
BM_RngLognormal(benchmark::State &state)
{
    Rng rng(3);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.lognormalMeanCv(1e6, 0.03));
}
BENCHMARK(BM_RngLognormal);

} // namespace
