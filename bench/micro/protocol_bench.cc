/** @file Microbenchmarks: iSwitch wire codec. */

#include <benchmark/benchmark.h>

#include "core/protocol.hh"

namespace {

using namespace isw;

void
BM_EncodeDataMtu(benchmark::State &state)
{
    net::ChunkPayload d;
    d.seg = 42;
    d.wire_floats = 366;
    d.values.assign(366, 1.5f);
    for (auto _ : state)
        benchmark::DoNotOptimize(core::encodeData(d));
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            (8 + 366 * 4));
}
BENCHMARK(BM_EncodeDataMtu);

void
BM_DecodeDataMtu(benchmark::State &state)
{
    net::ChunkPayload d;
    d.seg = 42;
    d.wire_floats = 366;
    d.values.assign(366, 1.5f);
    const auto bytes = core::encodeData(d);
    for (auto _ : state)
        benchmark::DoNotOptimize(core::decodeData(bytes));
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_DecodeDataMtu);

void
BM_ControlRoundTrip(benchmark::State &state)
{
    net::ControlPayload c{net::Action::kSetH, 1234567, true};
    for (auto _ : state)
        benchmark::DoNotOptimize(core::decodeControl(core::encodeControl(c)));
}
BENCHMARK(BM_ControlRoundTrip);

void
BM_SegArithmetic(benchmark::State &state)
{
    const std::uint64_t bytes = 6722519; // 6.41 MB
    std::uint64_t seg = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::floatsInSeg(seg++ % core::segCount(bytes), bytes));
    }
}
BENCHMARK(BM_SegArithmetic);

} // namespace
