/** @file Microbenchmarks: domain-sharded parallel event engine. */

#include <benchmark/benchmark.h>

#include <vector>

#include "sim/shard.hh"

namespace {

using namespace isw::sim;

constexpr TimeNs kLookahead = 100;
constexpr std::size_t kStepsPerChain = 4096;

/** A self-rescheduling intra-domain event chain. */
struct Chain
{
    ShardedEngine *eng;
    DomainId d;
    std::size_t left;

    void
    step()
    {
        if (left-- == 0)
            return;
        // Stride < lookahead: several chain links execute per window,
        // mixing window bookkeeping with plain serial queue work.
        eng->schedule(d, eng->now() + 7, [this] { step(); });
    }
};

/**
 * D domains each running a private event chain on one thread —
 * measures the engine's window overhead relative to a bare EventQueue
 * (BM_ScheduleRun in micro_eventqueue), with zero cross traffic.
 */
void
BM_ShardedLocalChains(benchmark::State &state)
{
    const auto domains = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        ShardPlan plan;
        plan.domains = domains;
        plan.lookahead = kLookahead;
        plan.threads = 1; // engine overhead, not parallel speedup
        ShardedEngine eng(plan);
        std::vector<Chain> chains(domains);
        for (std::size_t d = 0; d < domains; ++d) {
            chains[d] = Chain{&eng, static_cast<DomainId>(d),
                              kStepsPerChain};
            Chain *c = &chains[d];
            eng.schedule(c->d, 1, [c] { c->step(); });
        }
        eng.runAll();
        benchmark::DoNotOptimize(eng.executed());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(state.range(0) * kStepsPerChain));
}
BENCHMARK(BM_ShardedLocalChains)->Arg(1)->Arg(4)->Arg(16);

/** An event that hops to the next domain every step (worst case:
 *  every event is a mailbox handoff plus a merge). */
struct RingHop
{
    ShardedEngine *eng;
    std::size_t domains;
    std::size_t left;

    void
    step(DomainId d)
    {
        if (left-- == 0)
            return;
        const auto nxt =
            static_cast<DomainId>((d + 1) % domains);
        // Cross-domain sends must respect the lookahead contract.
        eng->schedule(nxt, eng->now() + kLookahead,
                      [this, nxt] { step(nxt); });
    }
};

void
BM_ShardedCrossRing(benchmark::State &state)
{
    const auto domains = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        ShardPlan plan;
        plan.domains = domains;
        plan.lookahead = kLookahead;
        plan.threads = 1;
        ShardedEngine eng(plan);
        RingHop hop{&eng, domains, kStepsPerChain};
        RingHop *h = &hop;
        eng.schedule(0, 1, [h] { h->step(0); });
        eng.runAll();
        benchmark::DoNotOptimize(eng.crossEvents());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(kStepsPerChain));
}
BENCHMARK(BM_ShardedCrossRing)->Arg(2)->Arg(8);

/**
 * All source domains fan into domain 0 every window on the full
 * thread pool — the adversarial case for the lock-free MPSC mailbox:
 * each flush CAS-pushes a batch node onto the same inbox head, so
 * this measures the push/drain path under real producer collisions
 * (eng.mailboxContention() counts the failed CAS attempts).
 */
struct FanIn
{
    ShardedEngine *eng;
    DomainId d;
    std::size_t left;

    void
    step()
    {
        if (left-- == 0)
            return;
        eng->schedule(0, eng->now() + kLookahead, [] {});
        eng->schedule(d, eng->now() + kLookahead, [this] { step(); });
    }
};

void
BM_ShardedMailboxFanIn(benchmark::State &state)
{
    const auto domains = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        ShardPlan plan;
        plan.domains = domains;
        plan.lookahead = kLookahead;
        plan.threads = 0; // hardware concurrency: provoke collisions
        ShardedEngine eng(plan);
        std::vector<FanIn> chains(domains);
        for (std::size_t d = 1; d < domains; ++d) {
            chains[d] = FanIn{&eng, static_cast<DomainId>(d),
                              kStepsPerChain};
            FanIn *c = &chains[d];
            eng.schedule(c->d, 1, [c] { c->step(); });
        }
        eng.runAll();
        benchmark::DoNotOptimize(eng.mailboxContention());
        benchmark::DoNotOptimize(eng.crossEvents());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>((state.range(0) - 1) * kStepsPerChain));
}
BENCHMARK(BM_ShardedMailboxFanIn)->Arg(8)->UseRealTime();

/**
 * The parallel configuration: local chains on as many threads as the
 * host offers. Real time is the figure of merit (cpu time sums the
 * pool); compare against BM_ShardedLocalChains/16 to see the
 * multi-core speedup on a given machine.
 */
void
BM_ShardedLocalChainsMT(benchmark::State &state)
{
    const auto domains = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        ShardPlan plan;
        plan.domains = domains;
        plan.lookahead = kLookahead;
        plan.threads = 0; // hardware concurrency
        ShardedEngine eng(plan);
        std::vector<Chain> chains(domains);
        for (std::size_t d = 0; d < domains; ++d) {
            chains[d] = Chain{&eng, static_cast<DomainId>(d),
                              kStepsPerChain};
            Chain *c = &chains[d];
            eng.schedule(c->d, 1, [c] { c->step(); });
        }
        eng.runAll();
        benchmark::DoNotOptimize(eng.executed());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(state.range(0) * kStepsPerChain));
}
BENCHMARK(BM_ShardedLocalChainsMT)->Arg(16)->UseRealTime();

} // namespace
