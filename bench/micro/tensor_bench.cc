/** @file Microbenchmarks: dense NN kernels. */

#include <benchmark/benchmark.h>

#include "ml/network.hh"
#include "ml/optimizer.hh"
#include "sim/random.hh"

namespace {

using namespace isw;

void
BM_AffineForward(benchmark::State &state)
{
    const auto dim = static_cast<std::size_t>(state.range(0));
    ml::Matrix x(32, dim, 0.5f);
    ml::Matrix w(dim, dim, 0.01f);
    ml::Vec b(dim, 0.0f);
    ml::Matrix y;
    for (auto _ : state) {
        ml::affineForward(x, w, b, y);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            32 * static_cast<std::int64_t>(dim * dim));
}
BENCHMARK(BM_AffineForward)->Arg(64)->Arg(256);

void
BM_MlpForwardBackward(benchmark::State &state)
{
    sim::Rng rng(1);
    ml::Network net = ml::Network::mlp<ml::ReLU>({6, 64, 64, 3}, rng);
    ml::ParamSet params;
    params.addNetwork(net);
    ml::Matrix x(32, 6, 0.1f);
    ml::Matrix dy(32, 3, 0.01f);
    for (auto _ : state) {
        params.zeroGrads();
        benchmark::DoNotOptimize(net.forward(x).data());
        benchmark::DoNotOptimize(net.backward(dy).data());
    }
}
BENCHMARK(BM_MlpForwardBackward);

void
BM_AdamStep(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    ml::Adam opt(1e-3);
    std::vector<float> p(n, 1.0f), g(n, 0.01f);
    for (auto _ : state) {
        opt.step(p, g);
        benchmark::DoNotOptimize(p.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_AdamStep)->Arg(1 << 12)->Arg(1 << 16);

void
BM_FlattenGradients(benchmark::State &state)
{
    sim::Rng rng(2);
    ml::Network net = ml::Network::mlp<ml::Tanh>({16, 128, 128, 8}, rng);
    ml::ParamSet params;
    params.addNetwork(net);
    ml::Vec out;
    for (auto _ : state) {
        params.copyGradsTo(out);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_FlattenGradients);

} // namespace
