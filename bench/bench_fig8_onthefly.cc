/**
 * @file
 * Reproduces paper Figure 8: conventional whole-vector aggregation
 * (the PS path waits for every full gradient vector before summing)
 * versus iSwitch's on-the-fly per-packet aggregation. We sweep the
 * gradient wire size and report the aggregation latency of both, plus
 * the packet-granularity pipeline benefit.
 */

#include <iostream>

#include "common.hh"

using namespace isw;

namespace {

double
aggMs(rl::Algo algo, dist::StrategyKind k, std::uint64_t wire_bytes)
{
    dist::JobConfig cfg = harness::timingJob(algo, k);
    cfg.wire_model_bytes = wire_bytes;
    cfg.stop.max_iterations = 12;
    const dist::RunResult res = dist::runJob(cfg);
    return res.breakdown.meanMs(dist::IterComponent::kGradAggregation);
}

} // namespace

int
main()
{
    bench::printHeader(
        "Figure 8 — conventional vs on-the-fly aggregation latency");

    harness::Table t({"Gradient size", "PS conventional (ms)",
                      "iSW on-the-fly (ms)", "Reduction"});
    const std::uint64_t kKb = 1024;
    for (std::uint64_t size :
         {64 * kKb, 256 * kKb, 1024 * kKb, 3328 * kKb, 6564 * kKb}) {
        const double ps = aggMs(rl::Algo::kPpo, dist::StrategyKind::kSyncPs,
                                size);
        const double isw =
            aggMs(rl::Algo::kPpo, dist::StrategyKind::kSyncIswitch, size);
        const std::string label =
            size >= kKb * 1024
                ? harness::fmt(double(size) / (1024.0 * 1024.0), 2) + " MB"
                : harness::fmt(double(size) / 1024.0, 0) + " KB";
        t.row({label, harness::fmt(ps, 3), harness::fmt(isw, 3),
               harness::fmt((1.0 - isw / ps) * 100.0, 1) + "%"});
    }
    t.print();

    std::cout
        << "\nThe on-the-fly gap grows with vector size: iSwitch overlaps"
        << "\nsummation with reception at packet granularity (Figure 8b),"
        << "\nwhile the PS baseline buffers N complete vectors first"
        << "\n(Figure 8a), pays the central-link serialization twice, and"
        << "\nonly then sums.\n";
    return 0;
}
