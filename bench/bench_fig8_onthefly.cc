/**
 * @file
 * Reproduces paper Figure 8: conventional whole-vector aggregation
 * (the PS path waits for every full gradient vector before summing)
 * versus iSwitch's on-the-fly per-packet aggregation. We sweep the
 * gradient wire size and report the aggregation latency of both, plus
 * the packet-granularity pipeline benefit.
 */

#include <iostream>

#include "common.hh"

using namespace isw;

namespace {

const std::uint64_t kKb = 1024;

harness::ExperimentSpec
sweepSpec(dist::StrategyKind k, std::uint64_t wire_bytes)
{
    harness::ExperimentSpec spec =
        harness::timingSpec(rl::Algo::kPpo, k);
    spec.name += "/wire" + std::to_string(wire_bytes / kKb) + "KB";
    spec.tags.push_back("fig8-sweep");
    spec.config.wire_model_bytes = wire_bytes;
    spec.config.stop.max_iterations = 12;
    return spec;
}

double
aggMs(dist::StrategyKind k, std::uint64_t wire_bytes)
{
    return bench::runner()
        .run(sweepSpec(k, wire_bytes))
        .breakdown.meanMs(dist::IterComponent::kGradAggregation);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::initBench(argc, argv);
    bench::printHeader(
        "Figure 8 — conventional vs on-the-fly aggregation latency");

    const std::array<std::uint64_t, 5> kSizes{
        64 * kKb, 256 * kKb, 1024 * kKb, 3328 * kKb, 6564 * kKb};

    std::vector<harness::ExperimentSpec> specs;
    for (std::uint64_t size : kSizes) {
        specs.push_back(sweepSpec(dist::StrategyKind::kSyncPs, size));
        specs.push_back(sweepSpec(dist::StrategyKind::kSyncIswitch, size));
    }
    bench::prefetch(specs);

    harness::Table t({"Gradient size", "PS conventional (ms)",
                      "iSW on-the-fly (ms)", "Reduction"});
    for (std::uint64_t size : kSizes) {
        const double ps = aggMs(dist::StrategyKind::kSyncPs, size);
        const double isw = aggMs(dist::StrategyKind::kSyncIswitch, size);
        const std::string label =
            size >= kKb * 1024
                ? harness::fmt(double(size) / (1024.0 * 1024.0), 2) + " MB"
                : harness::fmt(double(size) / 1024.0, 0) + " KB";
        t.row({label, harness::fmt(ps, 3), harness::fmt(isw, 3),
               harness::fmt((1.0 - isw / ps) * 100.0, 1) + "%"});
    }
    t.print();

    std::cout
        << "\nThe on-the-fly gap grows with vector size: iSwitch overlaps"
        << "\nsummation with reception at packet granularity (Figure 8b),"
        << "\nwhile the PS baseline buffers N complete vectors first"
        << "\n(Figure 8a), pays the central-link serialization twice, and"
        << "\nonly then sums.\n";
    bench::writeReport("fig8_onthefly");
    return 0;
}
