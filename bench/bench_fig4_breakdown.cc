/**
 * @file
 * Reproduces paper Figure 4: per-iteration breakdown of synchronous
 * distributed RL training under the PS and AllReduce baselines. The
 * headline claim is that gradient aggregation occupies 49.9%-83.2% of
 * each iteration.
 */

#include <iostream>

#include "common.hh"

using namespace isw;

namespace {

void
breakdownTable(dist::StrategyKind k)
{
    harness::banner(std::string("Figure 4") +
                    (k == dist::StrategyKind::kSyncPs ? "a — PS"
                                                      : "b — AllReduce"));
    std::vector<std::string> headers{"Component"};
    for (auto algo : bench::kAlgos)
        headers.push_back(rl::algoName(algo));
    harness::Table t(headers);

    for (std::size_t c = 0; c < dist::kNumComponents; ++c) {
        const auto comp = static_cast<dist::IterComponent>(c);
        std::vector<std::string> row{dist::componentName(comp)};
        for (auto algo : bench::kAlgos) {
            const auto &res = bench::timingResult(algo, k);
            row.push_back(
                harness::fmt(res.breakdown.fraction(comp) * 100.0, 1) + "%");
        }
        t.row(std::move(row));
    }
    t.print();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::initBench(argc, argv);
    bench::printHeader(
        "Figure 4 — per-iteration breakdown of PS and AllReduce training");

    std::vector<harness::ExperimentSpec> specs;
    for (auto algo : bench::kAlgos)
        for (auto k : {dist::StrategyKind::kSyncPs,
                       dist::StrategyKind::kSyncAllReduce})
            specs.push_back(harness::timingSpec(algo, k));
    bench::prefetch(specs);

    breakdownTable(dist::StrategyKind::kSyncPs);
    breakdownTable(dist::StrategyKind::kSyncAllReduce);

    harness::banner("Gradient-aggregation share (paper: 49.9%-83.2%)");
    harness::Table t({"Algorithm", "PS agg share", "AR agg share"});
    double lo = 1.0, hi = 0.0;
    for (auto algo : bench::kAlgos) {
        const double ps =
            bench::timingResult(algo, dist::StrategyKind::kSyncPs)
                .breakdown.fraction(dist::IterComponent::kGradAggregation);
        const double ar =
            bench::timingResult(algo, dist::StrategyKind::kSyncAllReduce)
                .breakdown.fraction(dist::IterComponent::kGradAggregation);
        lo = std::min({lo, ps, ar});
        hi = std::max({hi, ps, ar});
        t.row({rl::algoName(algo), harness::fmt(ps * 100.0, 1) + "%",
               harness::fmt(ar * 100.0, 1) + "%"});
    }
    t.print();
    std::cout << "measured range: " << harness::fmt(lo * 100.0, 1) << "%-"
              << harness::fmt(hi * 100.0, 1)
              << "% (paper reports 49.9%-83.2%)\n";
    bench::writeReport("fig4_breakdown");
    return 0;
}
