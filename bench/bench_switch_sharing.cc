/**
 * @file
 * Switch-sharing experiment (extension; not a paper figure): multiple
 * training jobs time-share one programmable switch through a bounded,
 * partitioned aggregator slot pool. Sweeps (a) single-job streaming
 * overhead as the pool shrinks below the tensor's segment count and
 * (b) two- and three-job co-schedules, reporting per-job progress,
 * Jain fairness across jobs, aggregate iteration throughput, and the
 * slot-contention counters.
 *
 * Everything here is simulated-deterministic: the same binary on the
 * same seed reproduces every iteration count and counter exactly,
 * which is what lets CI diff BENCH_switch_sharing.json against the
 * committed baseline.
 */

#include <fstream>
#include <iostream>

#include "common.hh"
#include "dist/multijob.hh"

using namespace isw;

namespace {

constexpr std::uint64_t kIters = 8;
constexpr std::uint64_t kSegments = 12;

/** One sync-iSwitch job whose wire tensor spans kSegments segments. */
dist::JobConfig
shareJob(rl::Algo algo, std::size_t workers)
{
    dist::JobConfig cfg = dist::JobConfig::forBenchmark(
        algo, dist::StrategyKind::kSyncIswitch, workers);
    cfg.wire_model_bytes = kSegments * core::kFloatsPerSeg * 4;
    cfg.stop.max_iterations = kIters;
    cfg.curve_every = 4;
    return cfg;
}

/** A k-job co-schedule on one switch with @p num_slots total slots. */
dist::MultiJobConfig
schedule(std::size_t k, std::size_t num_slots)
{
    static const std::array<rl::Algo, 3> algos{
        rl::Algo::kPpo, rl::Algo::kDqn, rl::Algo::kA2c};
    dist::MultiJobConfig mc;
    mc.fabric.accel.num_slots = num_slots;
    for (std::size_t i = 0; i < k; ++i)
        mc.jobs.push_back(shareJob(algos[i % algos.size()], 2));
    return mc;
}

double
fabricMetric(const dist::MultiJobResult &res, const char *key)
{
    const auto it = res.fabric.find(key);
    return it == res.fabric.end() ? 0.0 : it->second;
}

/** One named scenario in the deterministic report. */
struct Scenario {
    std::string name;
    std::size_t jobs;
    std::size_t num_slots;
};

} // namespace

int
main(int argc, char **argv)
{
    bench::initBench(argc, argv);
    bench::printHeader("Multi-job switch sharing — bounded slot pool");

    // Slot sweep: 0 = unbounded legacy pool (baseline), then pools
    // below / at / above the 12-segment tensor for a single job, then
    // two- and three-job co-schedules splitting one pool.
    const std::array<Scenario, 7> scenarios{{
        {"solo/unbounded", 1, 0},
        {"solo/4-slots", 1, 4},
        {"solo/12-slots", 1, 12},
        {"solo/24-slots", 1, 24},
        {"share2/8-slots", 2, 8},
        {"share2/24-slots", 2, 24},
        {"share3/12-slots", 3, 12},
    }};

    harness::banner("Slot pool sweep (sync iSwitch, 12-segment tensor)");
    harness::Table t({"Scenario", "iters/job", "fairness", "agg it/s",
                      "stale", "busy", "reclaimed"});

    harness::json::Value runs = harness::json::Value::array();
    for (const Scenario &s : scenarios) {
        const dist::MultiJobResult res =
            dist::runSharedJobs(schedule(s.jobs, s.num_slots));

        std::uint64_t iters = 0;
        bool all_ok = true;
        for (const auto &r : res.jobs) {
            iters += r.iterations;
            all_ok = all_ok && r.ok();
        }
        t.row({s.name,
               harness::fmt(static_cast<double>(iters) /
                                static_cast<double>(res.jobs.size()),
                            1),
               harness::fmt(fabricMetric(res, "jain_fairness"), 3),
               harness::fmt(fabricMetric(res, "aggregate_iterations_per_sec"),
                            1),
               harness::fmt(fabricMetric(res, "slot_stale_drops"), 0),
               harness::fmt(fabricMetric(res, "slot_busy_drops"), 0),
               harness::fmt(fabricMetric(res, "slot_reclaimed"), 0)});

        harness::json::Value run = harness::json::Value::object();
        run["name"] = "switch-sharing/" + s.name;
        run["ok"] = all_ok;
        harness::json::Value jobs = harness::json::Value::array();
        for (const auto &r : res.jobs)
            jobs.push(harness::resultToJson(r));
        run["job_results"] = std::move(jobs);
        harness::json::Value fabric = harness::json::Value::object();
        for (const auto &[key, value] : res.fabric)
            fabric[key] = value;
        run["fabric"] = std::move(fabric);
        runs.push(std::move(run));
    }
    t.print();

    std::cout << "\nA pool a third the tensor's size still completes every"
              << "\niteration: the self-clocking window recirculates slots"
              << "\ninstead of dropping packets. Co-scheduled jobs split the"
              << "\npool into private partitions, so fairness stays near 1.0"
              << "\nand contention counters measure the squeeze instead of"
              << "\ngradients corrupting each other.\n";

    // Deterministic report: every value above derives from simulated
    // time and counters, so CI byte-diffs this file against the
    // committed baseline (compare_baselines.py::check_switch_sharing).
    harness::json::Value root = harness::json::Value::object();
    root["bench"] = "switch_sharing";
    root["schema_version"] = 1;
    root["runs"] = std::move(runs);
    std::ofstream out("BENCH_switch_sharing.json");
    out << root.dump(2) << "\n";
    std::cout << "# wrote BENCH_switch_sharing.json ("
              << scenarios.size() << " runs)\n";
    return 0;
}
