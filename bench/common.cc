#include "common.hh"

#include <iostream>
#include <sstream>

namespace isw::bench {

double
TimingCache::perIterMs(rl::Algo algo, dist::StrategyKind k,
                       std::size_t workers, bool tree)
{
    return result(algo, k, workers, tree).perIterationMs();
}

const dist::RunResult &
TimingCache::result(rl::Algo algo, dist::StrategyKind k, std::size_t workers,
                    bool tree)
{
    std::ostringstream key;
    key << rl::algoName(algo) << "/" << dist::strategyName(k) << "/"
        << workers << "/" << tree;
    auto it = cache_.find(key.str());
    if (it == cache_.end()) {
        dist::JobConfig cfg = harness::timingJob(algo, k, workers);
        cfg.use_tree = tree;
        it = cache_.emplace(key.str(), dist::runJob(cfg)).first;
    }
    return it->second;
}

void
printHeader(const std::string &what)
{
    const auto opts = harness::benchOptions();
    std::cout << "#\n# iswitch-sim reproduction: " << what << "\n"
              << "# scale: " << (opts.full ? "full" : "quick")
              << " (set ISW_BENCH_SCALE=full for paper-scale runs)\n#\n";
}

std::string
speedupStr(double s)
{
    return harness::fmt(s, 2) + "x";
}

} // namespace isw::bench
