#include "common.hh"

#include <iostream>
#include <memory>

namespace isw::bench {

namespace {

std::size_t g_jobs = 0; ///< --jobs override captured by initBench()
std::unique_ptr<harness::Runner> g_runner;

} // namespace

harness::Cli
initBench(int argc, const char *const *argv,
          std::vector<std::string> extra_known)
{
    harness::Cli cli(argc, argv);
    std::vector<std::string> known = std::move(extra_known);
    known.push_back("jobs");
    cli.requireKnown(known);
    g_jobs = static_cast<std::size_t>(cli.getInt("jobs", 0));
    return cli;
}

harness::Runner &
runner()
{
    if (!g_runner) {
        harness::RunnerOptions opts;
        opts.jobs = g_jobs;
        g_runner = std::make_unique<harness::Runner>(opts);
    }
    return *g_runner;
}

void
prefetch(const std::vector<harness::ExperimentSpec> &specs)
{
    runner().runAll(specs);
}

double
perIterMs(rl::Algo algo, dist::StrategyKind k, std::size_t workers,
          bool tree)
{
    return timingResult(algo, k, workers, tree).perIterationMs();
}

const dist::RunResult &
timingResult(rl::Algo algo, dist::StrategyKind k, std::size_t workers,
             bool tree)
{
    return runner().run(harness::timingSpec(algo, k, workers, tree));
}

void
writeReport(const std::string &name)
{
    runner().writeReport(name);
}

void
printHeader(const std::string &what)
{
    const auto opts = harness::benchOptions();
    std::cout << "#\n# iswitch-sim reproduction: " << what << "\n"
              << "# scale: " << (opts.full ? "full" : "quick")
              << " (set ISW_BENCH_SCALE=full for paper-scale runs)\n"
              << "# jobs: " << runner().jobs()
              << " (set --jobs N or ISW_BENCH_JOBS)\n#\n";
}

std::string
speedupStr(double s)
{
    return harness::fmt(s, 2) + "x";
}

} // namespace isw::bench
