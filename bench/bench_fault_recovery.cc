/**
 * @file
 * Robustness experiment (extension; not a paper figure): training
 * throughput and recovery behavior under injected faults. Sweeps the
 * fault-plan scenarios — iid loss, Gilbert–Elliott bursts, and a
 * silent mid-training crash + rejoin — across representative
 * strategies, reporting the per-iteration slowdown versus the
 * lossless run plus the recovery counters (retransmissions, Help
 * requests, forced broadcasts, completed recoveries).
 *
 * Everything here is simulated-deterministic: the same binary on the
 * same seed reproduces every iteration count and counter exactly,
 * which is what lets CI diff BENCH_fault_recovery.json against the
 * committed baseline.
 */

#include <iostream>

#include "common.hh"

using namespace isw;

namespace {

constexpr std::uint64_t kIters = 15;

enum class Scenario { kLossless, kIidLoss, kBursty, kCrash };

const char *
scenarioName(Scenario s)
{
    switch (s) {
      case Scenario::kLossless: return "lossless";
      case Scenario::kIidLoss: return "iid-1%";
      case Scenario::kBursty: return "ge-burst";
      case Scenario::kCrash: return "crash";
    }
    return "?";
}

/** Apply @p s to @p cfg. Crash windows are placed relative to
 *  @p lossless_time (30%..55% of the healthy runtime). */
void
applyScenario(dist::JobConfig &cfg, Scenario s, sim::TimeNs lossless_time)
{
    switch (s) {
      case Scenario::kLossless:
        break;
      case Scenario::kIidLoss:
        cfg.faults.extra_loss = 0.01;
        break;
      case Scenario::kBursty:
        cfg.faults.ge.p_good_to_bad = 0.02;
        cfg.faults.ge.p_bad_to_good = 0.25;
        cfg.faults.ge.loss_bad = 0.8;
        break;
      case Scenario::kCrash:
        cfg.faults.crashes.push_back(
            net::WorkerCrash{2, lossless_time * 3 / 10,
                             lossless_time * 11 / 20, /*announce=*/false});
        break;
    }
    if (s != Scenario::kLossless) {
        // Diagnose instead of hanging if recovery ever regresses.
        cfg.stop.max_sim_time = lossless_time * 100 + sim::kSec;
    }
}

harness::ExperimentSpec
faultSpec(rl::Algo algo, dist::StrategyKind k, Scenario s,
          sim::TimeNs lossless_time)
{
    harness::ExperimentSpec spec = harness::timingSpec(algo, k);
    spec.name += std::string("/fault-") + scenarioName(s);
    spec.tags.push_back("fault-recovery");
    spec.config.stop.max_iterations = kIters;
    applyScenario(spec.config, s, lossless_time);
    return spec;
}

double
extra(const dist::RunResult &res, const char *key)
{
    const auto it = res.extras.find(key);
    return it == res.extras.end() ? 0.0 : it->second;
}

const char *
replModeName(core::ReplicationMode m)
{
    return m == core::ReplicationMode::kPerHarvest ? "per-harvest"
                                                   : "batched-lazy";
}

/** Failover panel (DESIGN.md §16): a backup switch shadows the
 *  primary, which fail-stops at 30% of the healthy runtime and never
 *  returns; heartbeat misses promote the backup mid-round. */
harness::ExperimentSpec
failoverSpec(rl::Algo algo, dist::StrategyKind k, core::ReplicationMode m,
             sim::TimeNs lossless_time)
{
    harness::ExperimentSpec spec = harness::timingSpec(algo, k);
    spec.name += std::string("/failover-") + replModeName(m);
    spec.tags.push_back("fault-recovery");
    spec.config.stop.max_iterations = kIters;
    spec.config.cluster.ha.with_backup = true;
    spec.config.cluster.ha.repl_mode = m;
    // A window comparable to the round time, so lazy mode visibly
    // coalesces the per-accept stream (at real wire sizes the 2 ms
    // default expires between contributions and degenerates to
    // per-harvest behavior).
    if (m == core::ReplicationMode::kBatchedLazy)
        spec.config.cluster.ha.staleness_window = 10 * sim::kMsec;
    spec.config.faults.switch_crashes.push_back(
        net::SwitchCrash{lossless_time * 3 / 10, /*rejoin_at=*/0});
    spec.config.stop.max_sim_time = lossless_time * 100 + sim::kSec;
    return spec;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::initBench(argc, argv);
    bench::printHeader("Fault injection — recovery cost across strategies");

    const std::array<dist::StrategyKind, 4> kinds{
        dist::StrategyKind::kSyncPs, dist::StrategyKind::kSyncAllReduce,
        dist::StrategyKind::kSyncIswitch,
        dist::StrategyKind::kAsyncIswitch};
    const std::array<Scenario, 4> scenarios{
        Scenario::kLossless, Scenario::kIidLoss, Scenario::kBursty,
        Scenario::kCrash};
    const rl::Algo algo = rl::Algo::kPpo;

    // The lossless runs anchor both the slowdown column and the crash
    // window placement, so they must land first.
    std::vector<harness::ExperimentSpec> probes;
    for (auto k : kinds)
        probes.push_back(faultSpec(algo, k, Scenario::kLossless, 0));
    bench::prefetch(probes);

    std::vector<harness::ExperimentSpec> specs;
    for (auto k : kinds) {
        const sim::TimeNs healthy =
            bench::runner()
                .run(faultSpec(algo, k, Scenario::kLossless, 0))
                .total_time;
        for (Scenario s : scenarios)
            specs.push_back(faultSpec(algo, k, s, healthy));
    }
    bench::prefetch(specs);

    for (auto k : kinds) {
        harness::banner(std::string(dist::strategyName(k)) +
                        " under injected faults (PPO, 4 workers)");
        harness::Table t({"Scenario", "per-iter (ms)", "slowdown", "retx",
                          "help/fbcast", "recoveries", "gave up"});
        const sim::TimeNs healthy =
            bench::runner()
                .run(faultSpec(algo, k, Scenario::kLossless, 0))
                .total_time;
        const double base_ms =
            bench::runner()
                .run(faultSpec(algo, k, Scenario::kLossless, 0))
                .perIterationMs();
        for (Scenario s : scenarios) {
            const dist::RunResult &res =
                bench::runner().run(faultSpec(algo, k, s, healthy));
            const double ms = res.perIterationMs();
            t.row({scenarioName(s), harness::fmt(ms, 2),
                   s == Scenario::kLossless
                       ? "1.00x"
                       : bench::speedupStr(ms / base_ms),
                   harness::fmt(extra(res, "retx_segments"), 0),
                   harness::fmt(extra(res, "help_requests") +
                                    extra(res, "fbcasts"),
                                0),
                   harness::fmt(extra(res, "recoveries"), 0),
                   harness::fmt(extra(res, "retx_gave_up"), 0)});
        }
        t.print();
    }

    const std::array<dist::StrategyKind, 3> ha_kinds{
        dist::StrategyKind::kSyncPs, dist::StrategyKind::kSyncIswitch,
        dist::StrategyKind::kAsyncIswitch};
    const std::array<core::ReplicationMode, 2> modes{
        core::ReplicationMode::kPerHarvest,
        core::ReplicationMode::kBatchedLazy};

    std::vector<harness::ExperimentSpec> ha_specs;
    for (auto k : ha_kinds) {
        const sim::TimeNs healthy =
            bench::runner()
                .run(faultSpec(algo, k, Scenario::kLossless, 0))
                .total_time;
        for (auto m : modes)
            ha_specs.push_back(failoverSpec(algo, k, m, healthy));
    }
    bench::prefetch(ha_specs);

    harness::banner(
        "Mid-training switch failover — replicated backup (PPO, 4 workers)");
    harness::Table ht({"Strategy", "repl mode", "per-iter (ms)", "slowdown",
                       "detect (ms)", "repl frames", "sw drops"});
    for (auto k : ha_kinds) {
        const sim::TimeNs healthy =
            bench::runner()
                .run(faultSpec(algo, k, Scenario::kLossless, 0))
                .total_time;
        const double base_ms =
            bench::runner()
                .run(faultSpec(algo, k, Scenario::kLossless, 0))
                .perIterationMs();
        // Crash-to-promotion latency: promote time minus crash time.
        const double crash_ms =
            static_cast<double>(healthy * 3 / 10) / 1e6;
        for (auto m : modes) {
            const dist::RunResult &res =
                bench::runner().run(failoverSpec(algo, k, m, healthy));
            const double ms = res.perIterationMs();
            ht.row({dist::strategyName(k), replModeName(m),
                    harness::fmt(ms, 2), bench::speedupStr(ms / base_ms),
                    harness::fmt(
                        extra(res, "failover_promote_ms") - crash_ms, 2),
                    harness::fmt(extra(res, "failover_repl_frames"), 0),
                    harness::fmt(extra(res, "fault_switch_drops"), 0)});
        }
    }
    ht.print();

    std::cout << "\nEvery strategy completes every scenario: the shared"
              << "\nretransmission layer (and iSwitch's Help/FBcast path)"
              << "\nturns loss and silent partitions into bounded latency"
              << "\ninstead of hangs. Lossless rows schedule zero recovery"
              << "\nevents and stay byte-identical to a faultless build."
              << "\nThe failover panel adds a fail-stop switch crash: the"
              << "\nbackup's heartbeat monitor promotes it mid-round and"
              << "\ntraining finishes from the replicated state — the cost"
              << "\nis one promotion delay, not a lost run.\n";
    bench::writeReport("fault_recovery");
    return 0;
}
