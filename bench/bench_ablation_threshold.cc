/**
 * @file
 * Ablation (paper Table 2's SetH knob): asynchronous iSwitch with an
 * aggregation threshold H below the worker count. Smaller H broadcasts
 * partial sums more often — shorter update intervals, but each update
 * averages fewer workers (noisier steps).
 */

#include <iostream>

#include "common.hh"

using namespace isw;

int
main()
{
    bench::printHeader("Ablation — aggregation threshold H (SetH, async)");

    harness::Table t({"H", "updates", "update interval (ms)",
                      "final reward"});
    for (std::uint32_t h : {1u, 2u, 4u}) {
        dist::JobConfig cfg = harness::learningJob(
            rl::Algo::kPpo, dist::StrategyKind::kAsyncIswitch);
        cfg.agg_threshold = h;
        cfg.stop.target_reward = 1e18; // fixed budget
        cfg.stop.max_iterations = 600;
        const dist::RunResult res = dist::runJob(cfg);
        t.row({std::to_string(h), std::to_string(res.iterations),
               harness::fmt(res.perIterationMs(), 2),
               harness::fmt(res.final_avg_reward, 2)});
    }
    t.print();

    std::cout << "\nH = #workers (the paper default) averages every"
              << "\nworker per update; H=1 degenerates toward Hogwild-"
              << "\nstyle per-gradient updates with 1/N the interval.\n";
    return 0;
}
