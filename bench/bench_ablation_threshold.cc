/**
 * @file
 * Ablation (paper Table 2's SetH knob): asynchronous iSwitch with an
 * aggregation threshold H below the worker count. Smaller H broadcasts
 * partial sums more often — shorter update intervals, but each update
 * averages fewer workers (noisier steps).
 */

#include <iostream>

#include "common.hh"

using namespace isw;

namespace {

harness::ExperimentSpec
thresholdSpec(std::uint32_t h)
{
    harness::ExperimentSpec spec = harness::learningSpec(
        rl::Algo::kPpo, dist::StrategyKind::kAsyncIswitch);
    spec.name += "/H" + std::to_string(h);
    spec.tags.push_back("threshold-sweep");
    spec.config.agg_threshold = h;
    spec.config.stop.target_reward = 1e18; // fixed budget
    spec.config.stop.max_iterations = 600;
    return spec;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::initBench(argc, argv);
    bench::printHeader("Ablation — aggregation threshold H (SetH, async)");

    std::vector<harness::ExperimentSpec> specs;
    for (std::uint32_t h : {1u, 2u, 4u})
        specs.push_back(thresholdSpec(h));
    bench::prefetch(specs);

    harness::Table t({"H", "updates", "update interval (ms)",
                      "final reward"});
    for (std::uint32_t h : {1u, 2u, 4u}) {
        const dist::RunResult &res = bench::runner().run(thresholdSpec(h));
        t.row({std::to_string(h), std::to_string(res.iterations),
               harness::fmt(res.perIterationMs(), 2),
               harness::fmt(res.final_avg_reward, 2)});
    }
    t.print();

    std::cout << "\nH = #workers (the paper default) averages every"
              << "\nworker per update; H=1 degenerates toward Hogwild-"
              << "\nstyle per-gradient updates with 1/N the interval.\n";
    bench::writeReport("ablation_threshold");
    return 0;
}
