/**
 * @file
 * Reproduces paper Figure 14: asynchronous DQN training curves for
 * Async PS vs Async iSwitch (both with staleness bound S = 3). The
 * two strategies genuinely diverge in iteration space — iSwitch's
 * fresher gradients converge in fewer updates — and in time space via
 * their different update intervals.
 */

#include <iostream>

#include "common.hh"

using namespace isw;

namespace {

constexpr std::size_t kCurveEvery = 200;

/** Multi-rack worker count for the sharded-engine rows (4 racks of
 *  3 under the default tree geometry: enough domains to parallelize). */
constexpr std::size_t kShardWorkers = 12;

harness::ExperimentSpec
curveSpec(dist::StrategyKind k)
{
    harness::ExperimentSpec spec =
        harness::learningSpec(rl::Algo::kDqn, k);
    spec.name += "/curve200";
    spec.tags.push_back("fig14-curve");
    spec.config.curve_every = kCurveEvery;
    return spec;
}

harness::FabricSpec
treeFabric(bool shard)
{
    harness::FabricSpec fabric;
    fabric.tree = true;
    fabric.shard = shard;
    return fabric;
}

/** The fig14 timing runs again, on a partitioned multi-rack tree:
 *  serial engine vs domain-sharded engine. Async rows are the point —
 *  the sharded engine now runs them (barrier-published staleness
 *  snapshots), deterministically across shard_threads. */
void
shardedAsyncTable()
{
    harness::banner("Async timing on the sharded engine (" +
                    std::to_string(kShardWorkers) + " workers, tree)");
    harness::Table t(
        {"Strategy", "Engine", "ms/iter", "sim events/s", "speedup"});
    for (auto k : {dist::StrategyKind::kAsyncPs,
                   dist::StrategyKind::kAsyncIswitch}) {
        const dist::RunResult &serial = bench::runner().run(
            harness::timingSpec(rl::Algo::kDqn, k, kShardWorkers,
                                treeFabric(false)));
        const dist::RunResult &sharded = bench::runner().run(
            harness::timingSpec(rl::Algo::kDqn, k, kShardWorkers,
                                treeFabric(true)));
        const auto eps = [](const dist::RunResult &r) {
            const auto it = r.perf.find("events_per_sec");
            return it == r.perf.end() ? 0.0 : it->second;
        };
        t.row({dist::strategyName(k), "serial",
               harness::fmt(serial.perIterationMs(), 3),
               harness::fmt(eps(serial), 0), "1.00x"});
        t.row({dist::strategyName(k), "sharded",
               harness::fmt(sharded.perIterationMs(), 3),
               harness::fmt(eps(sharded), 0),
               eps(serial) > 0.0
                   ? bench::speedupStr(eps(sharded) / eps(serial))
                   : "n/a"});
    }
    t.print();
}

void
curveTable(const char *title, const dist::RunResult &res, double periter_ms)
{
    harness::banner(title);
    harness::Table t({"iteration", "reward", "time (s)"});
    std::size_t iter = 0;
    for (const auto &p : res.reward_curve.points()) {
        iter += kCurveEvery;
        t.row({std::to_string(iter), harness::fmt(p.v, 2),
               harness::fmt(iter * periter_ms / 1000.0, 1)});
    }
    t.print();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::initBench(argc, argv);
    bench::printHeader("Figure 14 — async DQN training curves (reward vs time)");

    bench::prefetch(
        {curveSpec(dist::StrategyKind::kAsyncPs),
         curveSpec(dist::StrategyKind::kAsyncIswitch),
         harness::timingSpec(rl::Algo::kDqn, dist::StrategyKind::kAsyncPs),
         harness::timingSpec(rl::Algo::kDqn,
                             dist::StrategyKind::kAsyncIswitch),
         harness::timingSpec(rl::Algo::kDqn, dist::StrategyKind::kAsyncPs,
                             kShardWorkers, treeFabric(false)),
         harness::timingSpec(rl::Algo::kDqn, dist::StrategyKind::kAsyncPs,
                             kShardWorkers, treeFabric(true)),
         harness::timingSpec(rl::Algo::kDqn,
                             dist::StrategyKind::kAsyncIswitch,
                             kShardWorkers, treeFabric(false)),
         harness::timingSpec(rl::Algo::kDqn,
                             dist::StrategyKind::kAsyncIswitch,
                             kShardWorkers, treeFabric(true))});

    const dist::RunResult &ps =
        bench::runner().run(curveSpec(dist::StrategyKind::kAsyncPs));
    const dist::RunResult &isw =
        bench::runner().run(curveSpec(dist::StrategyKind::kAsyncIswitch));
    const double ps_ms =
        bench::perIterMs(rl::Algo::kDqn, dist::StrategyKind::kAsyncPs);
    const double isw_ms =
        bench::perIterMs(rl::Algo::kDqn, dist::StrategyKind::kAsyncIswitch);

    curveTable("Async PS curve", ps, ps_ms);
    curveTable("Async iSW curve", isw, isw_ms);
    shardedAsyncTable();

    std::cout << "\nAsync PS: " << ps.iterations << " updates to reward "
              << harness::fmt(ps.final_avg_reward, 2) << "; Async iSW: "
              << isw.iterations << " updates to reward "
              << harness::fmt(isw.final_avg_reward, 2)
              << "\n(paper: iSwitch converges in 44.4%-77.8% fewer"
              << " iterations thanks to fresher gradients).\n";
    bench::writeReport("fig14_async_curves");
    return 0;
}
