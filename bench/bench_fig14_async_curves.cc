/**
 * @file
 * Reproduces paper Figure 14: asynchronous DQN training curves for
 * Async PS vs Async iSwitch (both with staleness bound S = 3). The
 * two strategies genuinely diverge in iteration space — iSwitch's
 * fresher gradients converge in fewer updates — and in time space via
 * their different update intervals.
 */

#include <iostream>

#include "common.hh"

using namespace isw;

int
main()
{
    bench::printHeader("Figure 14 — async DQN training curves (reward vs time)");
    bench::TimingCache cache;

    dist::JobConfig ps_learn =
        harness::learningJob(rl::Algo::kDqn, dist::StrategyKind::kAsyncPs);
    dist::JobConfig isw_learn =
        harness::learningJob(rl::Algo::kDqn, dist::StrategyKind::kAsyncIswitch);
    ps_learn.curve_every = 200;
    isw_learn.curve_every = 200;
    const dist::RunResult ps = dist::runJob(ps_learn);
    const dist::RunResult isw = dist::runJob(isw_learn);

    const double ps_ms =
        cache.perIterMs(rl::Algo::kDqn, dist::StrategyKind::kAsyncPs);
    const double isw_ms =
        cache.perIterMs(rl::Algo::kDqn, dist::StrategyKind::kAsyncIswitch);

    harness::banner("Async PS curve");
    {
        harness::Table t({"iteration", "reward", "time (s)"});
        std::size_t iter = 0;
        for (const auto &p : ps.reward_curve.points()) {
            iter += ps_learn.curve_every;
            t.row({std::to_string(iter), harness::fmt(p.v, 2),
                   harness::fmt(iter * ps_ms / 1000.0, 1)});
        }
        t.print();
    }
    harness::banner("Async iSW curve");
    {
        harness::Table t({"iteration", "reward", "time (s)"});
        std::size_t iter = 0;
        for (const auto &p : isw.reward_curve.points()) {
            iter += isw_learn.curve_every;
            t.row({std::to_string(iter), harness::fmt(p.v, 2),
                   harness::fmt(iter * isw_ms / 1000.0, 1)});
        }
        t.print();
    }

    std::cout << "\nAsync PS: " << ps.iterations << " updates to reward "
              << harness::fmt(ps.final_avg_reward, 2) << "; Async iSW: "
              << isw.iterations << " updates to reward "
              << harness::fmt(isw.final_avg_reward, 2)
              << "\n(paper: iSwitch converges in 44.4%-77.8% fewer"
              << " iterations thanks to fresher gradients).\n";
    return 0;
}
