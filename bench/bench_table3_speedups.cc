/**
 * @file
 * Reproduces paper Table 3: summary of end-to-end speedups over the PS
 * baseline for every benchmark and strategy.
 *
 * Synchronous strategies share iteration counts (mathematical
 * equivalence), so their speedups equal per-iteration-time ratios and
 * come from paper-wire timing runs alone. Asynchronous speedups need
 * iterations-to-converge, measured with moderately capped learning
 * runs (the detailed async analysis lives in bench_table5_async).
 */

#include <iostream>

#include "common.hh"

using namespace isw;

namespace {

/** The capped half-milestone async learning run used by this summary. */
harness::ExperimentSpec
asyncSummarySpec(rl::Algo algo, dist::StrategyKind k)
{
    harness::ExperimentSpec spec = harness::learningSpec(algo, k);
    // Summary-level budget: race both strategies to a halfway reward
    // milestone (Table 5 runs the full budgets).
    spec.name += "/half-target";
    spec.tags.push_back("half-target");
    spec.config.stop.target_reward *= 0.5;
    spec.config.stop.max_iterations =
        std::min<std::uint64_t>(spec.config.stop.max_iterations, 8000);
    return spec;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::initBench(argc, argv);
    bench::printHeader("Table 3 — end-to-end speedup summary (vs PS)");

    std::vector<harness::ExperimentSpec> specs;
    for (auto algo : bench::kAlgos) {
        for (auto k : bench::kSyncStrategies)
            specs.push_back(harness::timingSpec(algo, k));
        for (auto k : {dist::StrategyKind::kAsyncPs,
                       dist::StrategyKind::kAsyncIswitch}) {
            specs.push_back(harness::timingSpec(algo, k));
            specs.push_back(asyncSummarySpec(algo, k));
        }
    }
    bench::prefetch(specs);

    harness::banner("Synchronous (measured / paper)");
    {
        harness::Table t({"Strategy", "DQN", "A2C", "PPO", "DDPG"});
        for (auto k : bench::kSyncStrategies) {
            std::vector<std::string> row{dist::strategyName(k)};
            for (auto algo : bench::kAlgos) {
                const double ps =
                    bench::perIterMs(algo, dist::StrategyKind::kSyncPs);
                const double mine = bench::perIterMs(algo, k);
                row.push_back(bench::speedupStr(ps / mine) + " / " +
                              bench::speedupStr(
                                  harness::paperSyncSpeedup(algo, k)));
            }
            t.row(std::move(row));
        }
        t.print();
    }

    harness::banner("Asynchronous (measured / paper)");
    {
        harness::Table t({"Strategy", "DQN", "A2C", "PPO", "DDPG"});
        std::vector<std::string> ps_row{"Async PS"};
        std::vector<std::string> isw_row{"Async iSW"};
        for (auto algo : bench::kAlgos) {
            ps_row.push_back("1.00x / 1.00x");
            const dist::RunResult &ps = bench::runner().run(
                asyncSummarySpec(algo, dist::StrategyKind::kAsyncPs));
            const dist::RunResult &isw = bench::runner().run(
                asyncSummarySpec(algo, dist::StrategyKind::kAsyncIswitch));
            const double e2e_ps =
                static_cast<double>(ps.iterations) *
                bench::perIterMs(algo, dist::StrategyKind::kAsyncPs);
            const double e2e_isw =
                static_cast<double>(isw.iterations) *
                bench::perIterMs(algo, dist::StrategyKind::kAsyncIswitch);
            isw_row.push_back(bench::speedupStr(e2e_ps / e2e_isw) + " / " +
                              bench::speedupStr(
                                  harness::paperAsyncSpeedup(algo)));
        }
        t.row(std::move(ps_row));
        t.row(std::move(isw_row));
        t.print();
    }

    std::cout << "\nPaper headline: up to 3.66x sync, 3.71x async (DQN).\n";
    bench::writeReport("table3_speedups");
    return 0;
}
