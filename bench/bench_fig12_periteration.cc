/**
 * @file
 * Reproduces paper Figure 12: per-iteration time of the synchronous
 * strategies (PS / AR / iSW) with component breakdown, normalized to
 * the PS baseline of each benchmark.
 */

#include <iostream>

#include "common.hh"

using namespace isw;

int
main(int argc, char **argv)
{
    const harness::Cli cli = bench::initBench(argc, argv, {"workers", "csv"});
    const auto workers =
        static_cast<std::size_t>(cli.getInt("workers", 4));
    const bool csv = cli.has("csv");

    bench::printHeader(
        "Figure 12 — synchronous per-iteration time, normalized to PS");

    std::vector<harness::ExperimentSpec> specs;
    for (auto algo : bench::kAlgos)
        for (auto k : bench::kSyncStrategies)
            specs.push_back(harness::timingSpec(algo, k, workers));
    bench::prefetch(specs);

    for (auto algo : bench::kAlgos) {
        harness::banner(std::string(rl::algoName(algo)));
        const double ps_total =
            bench::timingResult(algo, dist::StrategyKind::kSyncPs, workers)
                .breakdown.totalMeanMs();
        harness::Table t({"Strategy", "Per-iter (ms)", "Normalized",
                          "LGC (ms)", "Grad Agg (ms)", "Weight Upd (ms)",
                          "Paper per-iter (ms)"});
        for (auto k : bench::kSyncStrategies) {
            const auto &res = bench::timingResult(algo, k, workers);
            double lgc = 0.0;
            for (std::size_t c = 0; c < dist::kNumComponents; ++c) {
                const auto comp = static_cast<dist::IterComponent>(c);
                if (dist::isLgcComponent(comp) ||
                    comp == dist::IterComponent::kOthers)
                    lgc += res.breakdown.meanMs(comp);
            }
            t.row({dist::strategyName(k),
                   harness::fmt(res.breakdown.totalMeanMs(), 2),
                   harness::fmt(res.breakdown.totalMeanMs() / ps_total, 2),
                   harness::fmt(lgc, 2),
                   harness::fmt(res.breakdown.meanMs(
                                    dist::IterComponent::kGradAggregation),
                                2),
                   harness::fmt(res.breakdown.meanMs(
                                    dist::IterComponent::kWeightUpdate),
                                2),
                   harness::fmt(harness::paperSyncPerIterMs(algo, k), 2)});
        }
        if (csv)
            t.printCsv(std::cout);
        else
            t.print();
    }

    harness::banner("Aggregation-time reduction vs PS (paper: 81.6%-85.8%)");
    harness::Table t({"Algorithm", "iSW vs PS", "iSW vs AR"});
    for (auto algo : bench::kAlgos) {
        const double ps =
            bench::timingResult(algo, dist::StrategyKind::kSyncPs, workers)
                .breakdown.meanMs(dist::IterComponent::kGradAggregation);
        const double ar =
            bench::timingResult(algo, dist::StrategyKind::kSyncAllReduce,
                                workers)
                .breakdown.meanMs(dist::IterComponent::kGradAggregation);
        const double isw =
            bench::timingResult(algo, dist::StrategyKind::kSyncIswitch,
                                workers)
                .breakdown.meanMs(dist::IterComponent::kGradAggregation);
        t.row({rl::algoName(algo),
               harness::fmt((1.0 - isw / ps) * 100.0, 1) + "%",
               harness::fmt((1.0 - isw / ar) * 100.0, 1) + "%"});
    }
    t.print();
    bench::writeReport("fig12_periteration");
    return 0;
}
