/**
 * @file
 * Quantization ablation (DESIGN.md §14): the three wire precisions of
 * the pluggable pre/post-processor pipeline — fp32 bypass, packed
 * fp16, and block-shared-exponent int32 (the encoding an integer-only
 * switch ALU can aggregate exactly, SwitchML-style) — compared on the
 * three axes the trade-off actually spans:
 *
 *  1. Wire footprint: bytes on the network per iteration.
 *  2. Timing: per-iteration ms through the full simulated datapath.
 *  3. Training quality: single-node reward after codec round-trips.
 */

#include <iostream>

#include "common.hh"
#include "ml/quantize.hh"
#include "rl/model_zoo.hh"

using namespace isw;

namespace {

const std::array<net::Precision, 3> kPrecisions{net::Precision::kFp32,
                                                net::Precision::kFp16,
                                                net::Precision::kInt32};

harness::ExperimentSpec
precSpec(rl::Algo algo, dist::StrategyKind k, net::Precision prec)
{
    harness::ExperimentSpec spec = harness::timingSpec(algo, k);
    spec.name += std::string("/") + net::precisionName(prec);
    spec.tags.push_back("quantize-sweep");
    spec.config.precision = prec;
    spec.config.stop.max_iterations = 20;
    return spec;
}

/** Gradient bytes one worker puts on the wire per iteration. */
std::uint64_t
wireBytes(const harness::ExperimentSpec &spec)
{
    const std::uint64_t full = spec.config.wire_model_bytes;
    return spec.config.precision == net::Precision::kFp16 ? full / 2 : full;
}

/** One optimizer step with the precision's codec round-trip applied. */
void
roundTrip(ml::Vec &g, net::Precision prec)
{
    switch (prec) {
      case net::Precision::kFp16:
        ml::quantizeInPlace(g);
        break;
      case net::Precision::kInt32: {
        const int e = ml::blockExponent(g.data(), g.size(), 1);
        ml::Vec wire(g.size());
        ml::encodeBlockInt32(g.data(), g.size(), e, wire.data());
        ml::decodeBlockInt32(wire.data(), wire.size(), e, g.data());
        break;
      }
      case net::Precision::kFp32:
      default:
        break;
    }
}

double
trainReward(net::Precision prec)
{
    auto agent = rl::makeAgent(rl::Algo::kA2c,
                               rl::specFor(rl::Algo::kA2c).config, 31, 32);
    for (int i = 0; i < 700; ++i) {
        ml::Vec g = agent->computeGradient();
        roundTrip(g, prec);
        agent->applyAggregatedGradient(g, 1);
    }
    return agent->avgEpisodeReward(20);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::initBench(argc, argv);
    bench::printHeader("Ablation — quantized gradient wire (extension)");

    std::vector<harness::ExperimentSpec> specs;
    for (auto k : bench::kSyncStrategies)
        for (auto prec : kPrecisions)
            specs.push_back(precSpec(rl::Algo::kDqn, k, prec));
    bench::prefetch(specs);

    harness::banner(
        "Wire + timing: per-iteration ms at each precision (DQN)");
    {
        harness::Table t({"Strategy", "Precision", "wire MB/iter",
                          "per-iter (ms)", "vs fp32"});
        for (auto k : bench::kSyncStrategies) {
            const double base =
                bench::runner()
                    .run(precSpec(rl::Algo::kDqn, k, net::Precision::kFp32))
                    .perIterationMs();
            for (auto prec : kPrecisions) {
                const harness::ExperimentSpec spec =
                    precSpec(rl::Algo::kDqn, k, prec);
                const double ms =
                    bench::runner().run(spec).perIterationMs();
                t.row({dist::strategyName(k), net::precisionName(prec),
                       harness::fmt(static_cast<double>(wireBytes(spec)) /
                                        (1024.0 * 1024.0),
                                    2),
                       harness::fmt(ms, 2), bench::speedupStr(base / ms)});
            }
        }
        t.print();
    }

    harness::banner(
        "Switch-side int32 exactness counters (sync iSwitch, DQN)");
    {
        const dist::RunResult &res = bench::runner().run(precSpec(
            rl::Algo::kDqn, dist::StrategyKind::kSyncIswitch,
            net::Precision::kInt32));
        harness::Table t({"counter", "value"});
        for (const char *key :
             {"pipeline_segments", "quant_value_clamps", "quant_exp_clamps",
              "switch_overflow_clamps", "switch_exp_rescales"}) {
            const auto it = res.extras.find(key);
            t.row({key, harness::fmt(
                            it == res.extras.end() ? 0.0 : it->second, 0)});
        }
        t.print();
    }

    harness::banner("Training quality: A2C reward after 700 updates");
    {
        const double base = trainReward(net::Precision::kFp32);
        harness::Table t({"Gradient precision", "reward", "delta"});
        for (auto prec : kPrecisions) {
            const double r =
                prec == net::Precision::kFp32 ? base : trainReward(prec);
            t.row({net::precisionName(prec), harness::fmt(r, 2),
                   harness::fmt(r - base, 2)});
        }
        t.print();
    }

    std::cout << "\nfp16 halves the wire and buys bandwidth-bound"
              << "\nstrategies real time; int32 keeps fp32's wire size"
              << "\nbut makes switch aggregation exact and deterministic"
              << "\n(integer adds commute), at a quantization error the"
              << "\nblock-shared exponent keeps below training noise.\n";
    bench::writeReport("ablation_quantize");
    return 0;
}
