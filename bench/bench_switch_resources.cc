/**
 * @file
 * Software analogue of the paper's §3.5 resource accounting. The
 * NetFPGA implementation spends 44.5% of BRAM on the aggregation
 * buffers; here we measure the corresponding quantities in the model:
 * peak simultaneously-active segment buffers, their byte footprint,
 * and the recovery cache, for each benchmark's wire size at 4 workers.
 */

#include <iostream>

#include "common.hh"
#include "dist/strategy.hh"

using namespace isw;

int
main()
{
    bench::printHeader(
        "switch resource pressure (software analogue of paper section 3.5)");

    harness::Table t({"Benchmark", "wire size", "segments/round",
                      "peak active segs", "peak buffer KB",
                      "recovery cache KB"});
    for (auto algo : bench::kAlgos) {
        dist::JobConfig cfg = harness::timingJob(
            algo, dist::StrategyKind::kSyncIswitch);
        cfg.stop.max_iterations = 12;
        auto job = dist::makeJob(cfg);
        job->run();
        auto *sw = job->cluster().root;
        const auto &pool = sw->accelerator().pool();
        const double seg_bytes = 366.0 * 4.0;
        const std::uint64_t wire = cfg.wire_model_bytes;
        t.row({rl::algoName(algo),
               wire >= (1 << 20)
                   ? harness::fmt(double(wire) / (1 << 20), 2) + " MB"
                   : harness::fmt(double(wire) / 1024.0, 1) + " KB",
               std::to_string(core::segCount(wire)),
               std::to_string(pool.peakActiveSegments()),
               harness::fmt(pool.peakActiveSegments() * seg_bytes / 1024.0,
                            1),
               harness::fmt(sw->cachedResults() * seg_bytes / 1024.0, 1)});
    }
    t.print();

    std::cout
        << "\nOn-the-fly aggregation keeps only the in-flight window of"
        << "\nsegments buffered (paper: 44.5% of NetFPGA BRAM), far below"
        << "\none full gradient vector per worker as a server would need.\n";
    return 0;
}
