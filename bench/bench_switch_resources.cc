/**
 * @file
 * Software analogue of the paper's §3.5 resource accounting. The
 * NetFPGA implementation spends 44.5% of BRAM on the aggregation
 * buffers; here we measure the corresponding quantities in the model:
 * peak simultaneously-active segment buffers, their byte footprint,
 * and the recovery cache, for each benchmark's wire size at 4 workers.
 */

#include <iostream>

#include "common.hh"
#include "dist/strategy.hh"

using namespace isw;

namespace {

harness::ExperimentSpec
resourceSpec(rl::Algo algo)
{
    harness::ExperimentSpec spec =
        harness::timingSpec(algo, dist::StrategyKind::kSyncIswitch);
    spec.name += "/resources";
    spec.tags.push_back("switch-resources");
    spec.config.stop.max_iterations = 12;
    return spec;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::initBench(argc, argv);
    bench::printHeader(
        "switch resource pressure (software analogue of paper section 3.5)");

    std::vector<harness::ExperimentSpec> specs;
    for (auto algo : bench::kAlgos)
        specs.push_back(resourceSpec(algo));
    bench::prefetch(specs);

    harness::Table t({"Benchmark", "wire size", "segments/round",
                      "peak active segs", "peak buffer KB",
                      "recovery cache KB"});
    for (auto algo : bench::kAlgos) {
        const harness::ExperimentSpec spec = resourceSpec(algo);
        const dist::RunResult &res = bench::runner().run(spec);
        const double peak_segs = res.extras.at("peak_active_segments");
        const double cached = res.extras.at("cached_results");
        const double seg_bytes = 366.0 * 4.0;
        const std::uint64_t wire = spec.config.wire_model_bytes;
        t.row({rl::algoName(algo),
               wire >= (1 << 20)
                   ? harness::fmt(double(wire) / (1 << 20), 2) + " MB"
                   : harness::fmt(double(wire) / 1024.0, 1) + " KB",
               std::to_string(core::segCount(wire)),
               harness::fmt(peak_segs, 0),
               harness::fmt(peak_segs * seg_bytes / 1024.0, 1),
               harness::fmt(cached * seg_bytes / 1024.0, 1)});
    }
    t.print();

    std::cout
        << "\nOn-the-fly aggregation keeps only the in-flight window of"
        << "\nsegments buffered (paper: 44.5% of NetFPGA BRAM), far below"
        << "\none full gradient vector per worker as a server would need.\n";
    bench::writeReport("switch_resources");
    return 0;
}
