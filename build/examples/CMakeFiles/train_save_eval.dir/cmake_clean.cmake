file(REMOVE_RECURSE
  "CMakeFiles/train_save_eval.dir/train_save_eval.cpp.o"
  "CMakeFiles/train_save_eval.dir/train_save_eval.cpp.o.d"
  "train_save_eval"
  "train_save_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_save_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
