# Empty compiler generated dependencies file for train_save_eval.
# This may be replaced when dependencies are built.
