file(REMOVE_RECURSE
  "CMakeFiles/custom_switch_protocol.dir/custom_switch_protocol.cpp.o"
  "CMakeFiles/custom_switch_protocol.dir/custom_switch_protocol.cpp.o.d"
  "custom_switch_protocol"
  "custom_switch_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_switch_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
