# Empty dependencies file for rack_scale_training.
# This may be replaced when dependencies are built.
