file(REMOVE_RECURSE
  "CMakeFiles/rack_scale_training.dir/rack_scale_training.cpp.o"
  "CMakeFiles/rack_scale_training.dir/rack_scale_training.cpp.o.d"
  "rack_scale_training"
  "rack_scale_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rack_scale_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
