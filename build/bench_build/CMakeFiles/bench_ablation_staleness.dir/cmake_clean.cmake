file(REMOVE_RECURSE
  "../bench/bench_ablation_staleness"
  "../bench/bench_ablation_staleness.pdb"
  "CMakeFiles/bench_ablation_staleness.dir/bench_ablation_staleness.cc.o"
  "CMakeFiles/bench_ablation_staleness.dir/bench_ablation_staleness.cc.o.d"
  "CMakeFiles/bench_ablation_staleness.dir/common.cc.o"
  "CMakeFiles/bench_ablation_staleness.dir/common.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_staleness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
