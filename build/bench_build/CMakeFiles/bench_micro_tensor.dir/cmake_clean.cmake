file(REMOVE_RECURSE
  "../bench/bench_micro_tensor"
  "../bench/bench_micro_tensor.pdb"
  "CMakeFiles/bench_micro_tensor.dir/micro/tensor_bench.cc.o"
  "CMakeFiles/bench_micro_tensor.dir/micro/tensor_bench.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
