file(REMOVE_RECURSE
  "../bench/bench_fig15_scalability"
  "../bench/bench_fig15_scalability.pdb"
  "CMakeFiles/bench_fig15_scalability.dir/bench_fig15_scalability.cc.o"
  "CMakeFiles/bench_fig15_scalability.dir/bench_fig15_scalability.cc.o.d"
  "CMakeFiles/bench_fig15_scalability.dir/common.cc.o"
  "CMakeFiles/bench_fig15_scalability.dir/common.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
