file(REMOVE_RECURSE
  "../bench/bench_ablation_overheads"
  "../bench/bench_ablation_overheads.pdb"
  "CMakeFiles/bench_ablation_overheads.dir/bench_ablation_overheads.cc.o"
  "CMakeFiles/bench_ablation_overheads.dir/bench_ablation_overheads.cc.o.d"
  "CMakeFiles/bench_ablation_overheads.dir/common.cc.o"
  "CMakeFiles/bench_ablation_overheads.dir/common.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
