file(REMOVE_RECURSE
  "../bench/bench_table3_speedups"
  "../bench/bench_table3_speedups.pdb"
  "CMakeFiles/bench_table3_speedups.dir/bench_table3_speedups.cc.o"
  "CMakeFiles/bench_table3_speedups.dir/bench_table3_speedups.cc.o.d"
  "CMakeFiles/bench_table3_speedups.dir/common.cc.o"
  "CMakeFiles/bench_table3_speedups.dir/common.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_speedups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
