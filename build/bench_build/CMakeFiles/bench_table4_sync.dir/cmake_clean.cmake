file(REMOVE_RECURSE
  "../bench/bench_table4_sync"
  "../bench/bench_table4_sync.pdb"
  "CMakeFiles/bench_table4_sync.dir/bench_table4_sync.cc.o"
  "CMakeFiles/bench_table4_sync.dir/bench_table4_sync.cc.o.d"
  "CMakeFiles/bench_table4_sync.dir/common.cc.o"
  "CMakeFiles/bench_table4_sync.dir/common.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
