# Empty dependencies file for bench_switch_resources.
# This may be replaced when dependencies are built.
