file(REMOVE_RECURSE
  "../bench/bench_switch_resources"
  "../bench/bench_switch_resources.pdb"
  "CMakeFiles/bench_switch_resources.dir/bench_switch_resources.cc.o"
  "CMakeFiles/bench_switch_resources.dir/bench_switch_resources.cc.o.d"
  "CMakeFiles/bench_switch_resources.dir/common.cc.o"
  "CMakeFiles/bench_switch_resources.dir/common.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_switch_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
