file(REMOVE_RECURSE
  "../bench/bench_ablation_fp16"
  "../bench/bench_ablation_fp16.pdb"
  "CMakeFiles/bench_ablation_fp16.dir/bench_ablation_fp16.cc.o"
  "CMakeFiles/bench_ablation_fp16.dir/bench_ablation_fp16.cc.o.d"
  "CMakeFiles/bench_ablation_fp16.dir/common.cc.o"
  "CMakeFiles/bench_ablation_fp16.dir/common.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fp16.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
