# Empty dependencies file for bench_fig8_onthefly.
# This may be replaced when dependencies are built.
