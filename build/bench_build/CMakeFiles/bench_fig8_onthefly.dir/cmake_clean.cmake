file(REMOVE_RECURSE
  "../bench/bench_fig8_onthefly"
  "../bench/bench_fig8_onthefly.pdb"
  "CMakeFiles/bench_fig8_onthefly.dir/bench_fig8_onthefly.cc.o"
  "CMakeFiles/bench_fig8_onthefly.dir/bench_fig8_onthefly.cc.o.d"
  "CMakeFiles/bench_fig8_onthefly.dir/common.cc.o"
  "CMakeFiles/bench_fig8_onthefly.dir/common.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_onthefly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
