# Empty compiler generated dependencies file for bench_fig14_async_curves.
# This may be replaced when dependencies are built.
