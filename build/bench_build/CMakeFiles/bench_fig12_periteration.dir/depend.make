# Empty dependencies file for bench_fig12_periteration.
# This may be replaced when dependencies are built.
