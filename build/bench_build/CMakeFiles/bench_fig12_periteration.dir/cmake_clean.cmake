file(REMOVE_RECURSE
  "../bench/bench_fig12_periteration"
  "../bench/bench_fig12_periteration.pdb"
  "CMakeFiles/bench_fig12_periteration.dir/bench_fig12_periteration.cc.o"
  "CMakeFiles/bench_fig12_periteration.dir/bench_fig12_periteration.cc.o.d"
  "CMakeFiles/bench_fig12_periteration.dir/common.cc.o"
  "CMakeFiles/bench_fig12_periteration.dir/common.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_periteration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
