file(REMOVE_RECURSE
  "../bench/bench_micro_eventqueue"
  "../bench/bench_micro_eventqueue.pdb"
  "CMakeFiles/bench_micro_eventqueue.dir/micro/eventqueue_bench.cc.o"
  "CMakeFiles/bench_micro_eventqueue.dir/micro/eventqueue_bench.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_eventqueue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
