# Empty dependencies file for bench_table5_async.
# This may be replaced when dependencies are built.
