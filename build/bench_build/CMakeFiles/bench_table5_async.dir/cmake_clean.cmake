file(REMOVE_RECURSE
  "../bench/bench_table5_async"
  "../bench/bench_table5_async.pdb"
  "CMakeFiles/bench_table5_async.dir/bench_table5_async.cc.o"
  "CMakeFiles/bench_table5_async.dir/bench_table5_async.cc.o.d"
  "CMakeFiles/bench_table5_async.dir/common.cc.o"
  "CMakeFiles/bench_table5_async.dir/common.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_async.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
