file(REMOVE_RECURSE
  "../bench/bench_table2_control"
  "../bench/bench_table2_control.pdb"
  "CMakeFiles/bench_table2_control.dir/bench_table2_control.cc.o"
  "CMakeFiles/bench_table2_control.dir/bench_table2_control.cc.o.d"
  "CMakeFiles/bench_table2_control.dir/common.cc.o"
  "CMakeFiles/bench_table2_control.dir/common.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
