# Empty dependencies file for bench_ablation_sharded_ps.
# This may be replaced when dependencies are built.
