file(REMOVE_RECURSE
  "../bench/bench_ablation_sharded_ps"
  "../bench/bench_ablation_sharded_ps.pdb"
  "CMakeFiles/bench_ablation_sharded_ps.dir/bench_ablation_sharded_ps.cc.o"
  "CMakeFiles/bench_ablation_sharded_ps.dir/bench_ablation_sharded_ps.cc.o.d"
  "CMakeFiles/bench_ablation_sharded_ps.dir/common.cc.o"
  "CMakeFiles/bench_ablation_sharded_ps.dir/common.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sharded_ps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
