file(REMOVE_RECURSE
  "../bench/bench_micro_accelerator"
  "../bench/bench_micro_accelerator.pdb"
  "CMakeFiles/bench_micro_accelerator.dir/micro/accelerator_bench.cc.o"
  "CMakeFiles/bench_micro_accelerator.dir/micro/accelerator_bench.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_accelerator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
