
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro/accelerator_bench.cc" "bench_build/CMakeFiles/bench_micro_accelerator.dir/micro/accelerator_bench.cc.o" "gcc" "bench_build/CMakeFiles/bench_micro_accelerator.dir/micro/accelerator_bench.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/isw_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/isw_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/isw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/isw_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/isw_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/isw_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/isw_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
