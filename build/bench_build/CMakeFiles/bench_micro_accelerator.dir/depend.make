# Empty dependencies file for bench_micro_accelerator.
# This may be replaced when dependencies are built.
