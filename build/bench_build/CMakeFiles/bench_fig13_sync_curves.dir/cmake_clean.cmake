file(REMOVE_RECURSE
  "../bench/bench_fig13_sync_curves"
  "../bench/bench_fig13_sync_curves.pdb"
  "CMakeFiles/bench_fig13_sync_curves.dir/bench_fig13_sync_curves.cc.o"
  "CMakeFiles/bench_fig13_sync_curves.dir/bench_fig13_sync_curves.cc.o.d"
  "CMakeFiles/bench_fig13_sync_curves.dir/common.cc.o"
  "CMakeFiles/bench_fig13_sync_curves.dir/common.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_sync_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
