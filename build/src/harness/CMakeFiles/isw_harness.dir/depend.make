# Empty dependencies file for isw_harness.
# This may be replaced when dependencies are built.
