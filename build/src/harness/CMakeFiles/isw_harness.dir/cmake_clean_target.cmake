file(REMOVE_RECURSE
  "libisw_harness.a"
)
