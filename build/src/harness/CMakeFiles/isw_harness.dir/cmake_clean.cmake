file(REMOVE_RECURSE
  "CMakeFiles/isw_harness.dir/calibration.cc.o"
  "CMakeFiles/isw_harness.dir/calibration.cc.o.d"
  "CMakeFiles/isw_harness.dir/cli.cc.o"
  "CMakeFiles/isw_harness.dir/cli.cc.o.d"
  "CMakeFiles/isw_harness.dir/experiment.cc.o"
  "CMakeFiles/isw_harness.dir/experiment.cc.o.d"
  "CMakeFiles/isw_harness.dir/report.cc.o"
  "CMakeFiles/isw_harness.dir/report.cc.o.d"
  "libisw_harness.a"
  "libisw_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isw_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
