# Empty compiler generated dependencies file for isw_core.
# This may be replaced when dependencies are built.
