file(REMOVE_RECURSE
  "CMakeFiles/isw_core.dir/accelerator.cc.o"
  "CMakeFiles/isw_core.dir/accelerator.cc.o.d"
  "CMakeFiles/isw_core.dir/control.cc.o"
  "CMakeFiles/isw_core.dir/control.cc.o.d"
  "CMakeFiles/isw_core.dir/programmable_switch.cc.o"
  "CMakeFiles/isw_core.dir/programmable_switch.cc.o.d"
  "CMakeFiles/isw_core.dir/protocol.cc.o"
  "CMakeFiles/isw_core.dir/protocol.cc.o.d"
  "CMakeFiles/isw_core.dir/seg_buffer.cc.o"
  "CMakeFiles/isw_core.dir/seg_buffer.cc.o.d"
  "libisw_core.a"
  "libisw_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isw_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
