file(REMOVE_RECURSE
  "libisw_core.a"
)
