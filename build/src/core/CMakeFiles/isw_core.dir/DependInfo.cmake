
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/accelerator.cc" "src/core/CMakeFiles/isw_core.dir/accelerator.cc.o" "gcc" "src/core/CMakeFiles/isw_core.dir/accelerator.cc.o.d"
  "/root/repo/src/core/control.cc" "src/core/CMakeFiles/isw_core.dir/control.cc.o" "gcc" "src/core/CMakeFiles/isw_core.dir/control.cc.o.d"
  "/root/repo/src/core/programmable_switch.cc" "src/core/CMakeFiles/isw_core.dir/programmable_switch.cc.o" "gcc" "src/core/CMakeFiles/isw_core.dir/programmable_switch.cc.o.d"
  "/root/repo/src/core/protocol.cc" "src/core/CMakeFiles/isw_core.dir/protocol.cc.o" "gcc" "src/core/CMakeFiles/isw_core.dir/protocol.cc.o.d"
  "/root/repo/src/core/seg_buffer.cc" "src/core/CMakeFiles/isw_core.dir/seg_buffer.cc.o" "gcc" "src/core/CMakeFiles/isw_core.dir/seg_buffer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/isw_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/isw_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
