# Empty compiler generated dependencies file for isw_net.
# This may be replaced when dependencies are built.
