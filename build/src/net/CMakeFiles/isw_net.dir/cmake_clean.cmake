file(REMOVE_RECURSE
  "CMakeFiles/isw_net.dir/address.cc.o"
  "CMakeFiles/isw_net.dir/address.cc.o.d"
  "CMakeFiles/isw_net.dir/host.cc.o"
  "CMakeFiles/isw_net.dir/host.cc.o.d"
  "CMakeFiles/isw_net.dir/link.cc.o"
  "CMakeFiles/isw_net.dir/link.cc.o.d"
  "CMakeFiles/isw_net.dir/node.cc.o"
  "CMakeFiles/isw_net.dir/node.cc.o.d"
  "CMakeFiles/isw_net.dir/packet.cc.o"
  "CMakeFiles/isw_net.dir/packet.cc.o.d"
  "CMakeFiles/isw_net.dir/switch.cc.o"
  "CMakeFiles/isw_net.dir/switch.cc.o.d"
  "CMakeFiles/isw_net.dir/topology.cc.o"
  "CMakeFiles/isw_net.dir/topology.cc.o.d"
  "CMakeFiles/isw_net.dir/trace.cc.o"
  "CMakeFiles/isw_net.dir/trace.cc.o.d"
  "libisw_net.a"
  "libisw_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isw_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
