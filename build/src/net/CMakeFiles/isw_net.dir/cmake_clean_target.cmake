file(REMOVE_RECURSE
  "libisw_net.a"
)
