
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/layers.cc" "src/ml/CMakeFiles/isw_ml.dir/layers.cc.o" "gcc" "src/ml/CMakeFiles/isw_ml.dir/layers.cc.o.d"
  "/root/repo/src/ml/losses.cc" "src/ml/CMakeFiles/isw_ml.dir/losses.cc.o" "gcc" "src/ml/CMakeFiles/isw_ml.dir/losses.cc.o.d"
  "/root/repo/src/ml/network.cc" "src/ml/CMakeFiles/isw_ml.dir/network.cc.o" "gcc" "src/ml/CMakeFiles/isw_ml.dir/network.cc.o.d"
  "/root/repo/src/ml/optimizer.cc" "src/ml/CMakeFiles/isw_ml.dir/optimizer.cc.o" "gcc" "src/ml/CMakeFiles/isw_ml.dir/optimizer.cc.o.d"
  "/root/repo/src/ml/quantize.cc" "src/ml/CMakeFiles/isw_ml.dir/quantize.cc.o" "gcc" "src/ml/CMakeFiles/isw_ml.dir/quantize.cc.o.d"
  "/root/repo/src/ml/serialize.cc" "src/ml/CMakeFiles/isw_ml.dir/serialize.cc.o" "gcc" "src/ml/CMakeFiles/isw_ml.dir/serialize.cc.o.d"
  "/root/repo/src/ml/tensor.cc" "src/ml/CMakeFiles/isw_ml.dir/tensor.cc.o" "gcc" "src/ml/CMakeFiles/isw_ml.dir/tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/isw_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
