file(REMOVE_RECURSE
  "CMakeFiles/isw_ml.dir/layers.cc.o"
  "CMakeFiles/isw_ml.dir/layers.cc.o.d"
  "CMakeFiles/isw_ml.dir/losses.cc.o"
  "CMakeFiles/isw_ml.dir/losses.cc.o.d"
  "CMakeFiles/isw_ml.dir/network.cc.o"
  "CMakeFiles/isw_ml.dir/network.cc.o.d"
  "CMakeFiles/isw_ml.dir/optimizer.cc.o"
  "CMakeFiles/isw_ml.dir/optimizer.cc.o.d"
  "CMakeFiles/isw_ml.dir/quantize.cc.o"
  "CMakeFiles/isw_ml.dir/quantize.cc.o.d"
  "CMakeFiles/isw_ml.dir/serialize.cc.o"
  "CMakeFiles/isw_ml.dir/serialize.cc.o.d"
  "CMakeFiles/isw_ml.dir/tensor.cc.o"
  "CMakeFiles/isw_ml.dir/tensor.cc.o.d"
  "libisw_ml.a"
  "libisw_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isw_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
