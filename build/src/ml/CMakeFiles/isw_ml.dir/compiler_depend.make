# Empty compiler generated dependencies file for isw_ml.
# This may be replaced when dependencies are built.
