file(REMOVE_RECURSE
  "libisw_ml.a"
)
