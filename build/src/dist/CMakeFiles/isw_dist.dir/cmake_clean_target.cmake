file(REMOVE_RECURSE
  "libisw_dist.a"
)
