file(REMOVE_RECURSE
  "CMakeFiles/isw_dist.dir/allreduce.cc.o"
  "CMakeFiles/isw_dist.dir/allreduce.cc.o.d"
  "CMakeFiles/isw_dist.dir/cluster.cc.o"
  "CMakeFiles/isw_dist.dir/cluster.cc.o.d"
  "CMakeFiles/isw_dist.dir/iswitch_async.cc.o"
  "CMakeFiles/isw_dist.dir/iswitch_async.cc.o.d"
  "CMakeFiles/isw_dist.dir/iswitch_sync.cc.o"
  "CMakeFiles/isw_dist.dir/iswitch_sync.cc.o.d"
  "CMakeFiles/isw_dist.dir/metrics.cc.o"
  "CMakeFiles/isw_dist.dir/metrics.cc.o.d"
  "CMakeFiles/isw_dist.dir/ps_async.cc.o"
  "CMakeFiles/isw_dist.dir/ps_async.cc.o.d"
  "CMakeFiles/isw_dist.dir/ps_sharded.cc.o"
  "CMakeFiles/isw_dist.dir/ps_sharded.cc.o.d"
  "CMakeFiles/isw_dist.dir/ps_sync.cc.o"
  "CMakeFiles/isw_dist.dir/ps_sync.cc.o.d"
  "CMakeFiles/isw_dist.dir/strategy.cc.o"
  "CMakeFiles/isw_dist.dir/strategy.cc.o.d"
  "CMakeFiles/isw_dist.dir/timing.cc.o"
  "CMakeFiles/isw_dist.dir/timing.cc.o.d"
  "CMakeFiles/isw_dist.dir/transport.cc.o"
  "CMakeFiles/isw_dist.dir/transport.cc.o.d"
  "libisw_dist.a"
  "libisw_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isw_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
