# Empty dependencies file for isw_dist.
# This may be replaced when dependencies are built.
