
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dist/allreduce.cc" "src/dist/CMakeFiles/isw_dist.dir/allreduce.cc.o" "gcc" "src/dist/CMakeFiles/isw_dist.dir/allreduce.cc.o.d"
  "/root/repo/src/dist/cluster.cc" "src/dist/CMakeFiles/isw_dist.dir/cluster.cc.o" "gcc" "src/dist/CMakeFiles/isw_dist.dir/cluster.cc.o.d"
  "/root/repo/src/dist/iswitch_async.cc" "src/dist/CMakeFiles/isw_dist.dir/iswitch_async.cc.o" "gcc" "src/dist/CMakeFiles/isw_dist.dir/iswitch_async.cc.o.d"
  "/root/repo/src/dist/iswitch_sync.cc" "src/dist/CMakeFiles/isw_dist.dir/iswitch_sync.cc.o" "gcc" "src/dist/CMakeFiles/isw_dist.dir/iswitch_sync.cc.o.d"
  "/root/repo/src/dist/metrics.cc" "src/dist/CMakeFiles/isw_dist.dir/metrics.cc.o" "gcc" "src/dist/CMakeFiles/isw_dist.dir/metrics.cc.o.d"
  "/root/repo/src/dist/ps_async.cc" "src/dist/CMakeFiles/isw_dist.dir/ps_async.cc.o" "gcc" "src/dist/CMakeFiles/isw_dist.dir/ps_async.cc.o.d"
  "/root/repo/src/dist/ps_sharded.cc" "src/dist/CMakeFiles/isw_dist.dir/ps_sharded.cc.o" "gcc" "src/dist/CMakeFiles/isw_dist.dir/ps_sharded.cc.o.d"
  "/root/repo/src/dist/ps_sync.cc" "src/dist/CMakeFiles/isw_dist.dir/ps_sync.cc.o" "gcc" "src/dist/CMakeFiles/isw_dist.dir/ps_sync.cc.o.d"
  "/root/repo/src/dist/strategy.cc" "src/dist/CMakeFiles/isw_dist.dir/strategy.cc.o" "gcc" "src/dist/CMakeFiles/isw_dist.dir/strategy.cc.o.d"
  "/root/repo/src/dist/timing.cc" "src/dist/CMakeFiles/isw_dist.dir/timing.cc.o" "gcc" "src/dist/CMakeFiles/isw_dist.dir/timing.cc.o.d"
  "/root/repo/src/dist/transport.cc" "src/dist/CMakeFiles/isw_dist.dir/transport.cc.o" "gcc" "src/dist/CMakeFiles/isw_dist.dir/transport.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/isw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/isw_net.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/isw_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/isw_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/isw_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
