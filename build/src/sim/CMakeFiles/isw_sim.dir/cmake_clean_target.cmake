file(REMOVE_RECURSE
  "libisw_sim.a"
)
