file(REMOVE_RECURSE
  "CMakeFiles/isw_sim.dir/event_queue.cc.o"
  "CMakeFiles/isw_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/isw_sim.dir/log.cc.o"
  "CMakeFiles/isw_sim.dir/log.cc.o.d"
  "CMakeFiles/isw_sim.dir/random.cc.o"
  "CMakeFiles/isw_sim.dir/random.cc.o.d"
  "CMakeFiles/isw_sim.dir/stats.cc.o"
  "CMakeFiles/isw_sim.dir/stats.cc.o.d"
  "libisw_sim.a"
  "libisw_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isw_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
