# Empty dependencies file for isw_sim.
# This may be replaced when dependencies are built.
