file(REMOVE_RECURSE
  "CMakeFiles/isw_rl.dir/a2c.cc.o"
  "CMakeFiles/isw_rl.dir/a2c.cc.o.d"
  "CMakeFiles/isw_rl.dir/agent.cc.o"
  "CMakeFiles/isw_rl.dir/agent.cc.o.d"
  "CMakeFiles/isw_rl.dir/ddpg.cc.o"
  "CMakeFiles/isw_rl.dir/ddpg.cc.o.d"
  "CMakeFiles/isw_rl.dir/dqn.cc.o"
  "CMakeFiles/isw_rl.dir/dqn.cc.o.d"
  "CMakeFiles/isw_rl.dir/envs/cheetah.cc.o"
  "CMakeFiles/isw_rl.dir/envs/cheetah.cc.o.d"
  "CMakeFiles/isw_rl.dir/envs/hopper.cc.o"
  "CMakeFiles/isw_rl.dir/envs/hopper.cc.o.d"
  "CMakeFiles/isw_rl.dir/envs/pong.cc.o"
  "CMakeFiles/isw_rl.dir/envs/pong.cc.o.d"
  "CMakeFiles/isw_rl.dir/envs/qbert.cc.o"
  "CMakeFiles/isw_rl.dir/envs/qbert.cc.o.d"
  "CMakeFiles/isw_rl.dir/evaluate.cc.o"
  "CMakeFiles/isw_rl.dir/evaluate.cc.o.d"
  "CMakeFiles/isw_rl.dir/model_zoo.cc.o"
  "CMakeFiles/isw_rl.dir/model_zoo.cc.o.d"
  "CMakeFiles/isw_rl.dir/ppo.cc.o"
  "CMakeFiles/isw_rl.dir/ppo.cc.o.d"
  "CMakeFiles/isw_rl.dir/replay_buffer.cc.o"
  "CMakeFiles/isw_rl.dir/replay_buffer.cc.o.d"
  "CMakeFiles/isw_rl.dir/returns.cc.o"
  "CMakeFiles/isw_rl.dir/returns.cc.o.d"
  "libisw_rl.a"
  "libisw_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isw_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
