# Empty dependencies file for isw_rl.
# This may be replaced when dependencies are built.
