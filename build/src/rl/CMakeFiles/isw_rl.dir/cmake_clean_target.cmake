file(REMOVE_RECURSE
  "libisw_rl.a"
)
