
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rl/a2c.cc" "src/rl/CMakeFiles/isw_rl.dir/a2c.cc.o" "gcc" "src/rl/CMakeFiles/isw_rl.dir/a2c.cc.o.d"
  "/root/repo/src/rl/agent.cc" "src/rl/CMakeFiles/isw_rl.dir/agent.cc.o" "gcc" "src/rl/CMakeFiles/isw_rl.dir/agent.cc.o.d"
  "/root/repo/src/rl/ddpg.cc" "src/rl/CMakeFiles/isw_rl.dir/ddpg.cc.o" "gcc" "src/rl/CMakeFiles/isw_rl.dir/ddpg.cc.o.d"
  "/root/repo/src/rl/dqn.cc" "src/rl/CMakeFiles/isw_rl.dir/dqn.cc.o" "gcc" "src/rl/CMakeFiles/isw_rl.dir/dqn.cc.o.d"
  "/root/repo/src/rl/envs/cheetah.cc" "src/rl/CMakeFiles/isw_rl.dir/envs/cheetah.cc.o" "gcc" "src/rl/CMakeFiles/isw_rl.dir/envs/cheetah.cc.o.d"
  "/root/repo/src/rl/envs/hopper.cc" "src/rl/CMakeFiles/isw_rl.dir/envs/hopper.cc.o" "gcc" "src/rl/CMakeFiles/isw_rl.dir/envs/hopper.cc.o.d"
  "/root/repo/src/rl/envs/pong.cc" "src/rl/CMakeFiles/isw_rl.dir/envs/pong.cc.o" "gcc" "src/rl/CMakeFiles/isw_rl.dir/envs/pong.cc.o.d"
  "/root/repo/src/rl/envs/qbert.cc" "src/rl/CMakeFiles/isw_rl.dir/envs/qbert.cc.o" "gcc" "src/rl/CMakeFiles/isw_rl.dir/envs/qbert.cc.o.d"
  "/root/repo/src/rl/evaluate.cc" "src/rl/CMakeFiles/isw_rl.dir/evaluate.cc.o" "gcc" "src/rl/CMakeFiles/isw_rl.dir/evaluate.cc.o.d"
  "/root/repo/src/rl/model_zoo.cc" "src/rl/CMakeFiles/isw_rl.dir/model_zoo.cc.o" "gcc" "src/rl/CMakeFiles/isw_rl.dir/model_zoo.cc.o.d"
  "/root/repo/src/rl/ppo.cc" "src/rl/CMakeFiles/isw_rl.dir/ppo.cc.o" "gcc" "src/rl/CMakeFiles/isw_rl.dir/ppo.cc.o.d"
  "/root/repo/src/rl/replay_buffer.cc" "src/rl/CMakeFiles/isw_rl.dir/replay_buffer.cc.o" "gcc" "src/rl/CMakeFiles/isw_rl.dir/replay_buffer.cc.o.d"
  "/root/repo/src/rl/returns.cc" "src/rl/CMakeFiles/isw_rl.dir/returns.cc.o" "gcc" "src/rl/CMakeFiles/isw_rl.dir/returns.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/isw_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/isw_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
