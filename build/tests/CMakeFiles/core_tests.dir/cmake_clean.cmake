file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/accelerator_test.cc.o"
  "CMakeFiles/core_tests.dir/core/accelerator_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/control_test.cc.o"
  "CMakeFiles/core_tests.dir/core/control_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/protocol_test.cc.o"
  "CMakeFiles/core_tests.dir/core/protocol_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/seg_buffer_test.cc.o"
  "CMakeFiles/core_tests.dir/core/seg_buffer_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/switch_integration_test.cc.o"
  "CMakeFiles/core_tests.dir/core/switch_integration_test.cc.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
