file(REMOVE_RECURSE
  "CMakeFiles/ml_tests.dir/ml/layers_test.cc.o"
  "CMakeFiles/ml_tests.dir/ml/layers_test.cc.o.d"
  "CMakeFiles/ml_tests.dir/ml/losses_test.cc.o"
  "CMakeFiles/ml_tests.dir/ml/losses_test.cc.o.d"
  "CMakeFiles/ml_tests.dir/ml/network_test.cc.o"
  "CMakeFiles/ml_tests.dir/ml/network_test.cc.o.d"
  "CMakeFiles/ml_tests.dir/ml/optimizer_test.cc.o"
  "CMakeFiles/ml_tests.dir/ml/optimizer_test.cc.o.d"
  "CMakeFiles/ml_tests.dir/ml/quantize_test.cc.o"
  "CMakeFiles/ml_tests.dir/ml/quantize_test.cc.o.d"
  "CMakeFiles/ml_tests.dir/ml/serialize_test.cc.o"
  "CMakeFiles/ml_tests.dir/ml/serialize_test.cc.o.d"
  "CMakeFiles/ml_tests.dir/ml/tensor_test.cc.o"
  "CMakeFiles/ml_tests.dir/ml/tensor_test.cc.o.d"
  "ml_tests"
  "ml_tests.pdb"
  "ml_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
