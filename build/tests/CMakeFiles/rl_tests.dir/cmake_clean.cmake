file(REMOVE_RECURSE
  "CMakeFiles/rl_tests.dir/rl/agents_test.cc.o"
  "CMakeFiles/rl_tests.dir/rl/agents_test.cc.o.d"
  "CMakeFiles/rl_tests.dir/rl/envs_test.cc.o"
  "CMakeFiles/rl_tests.dir/rl/envs_test.cc.o.d"
  "CMakeFiles/rl_tests.dir/rl/evaluate_test.cc.o"
  "CMakeFiles/rl_tests.dir/rl/evaluate_test.cc.o.d"
  "CMakeFiles/rl_tests.dir/rl/replay_test.cc.o"
  "CMakeFiles/rl_tests.dir/rl/replay_test.cc.o.d"
  "CMakeFiles/rl_tests.dir/rl/returns_test.cc.o"
  "CMakeFiles/rl_tests.dir/rl/returns_test.cc.o.d"
  "rl_tests"
  "rl_tests.pdb"
  "rl_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rl_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
