file(REMOVE_RECURSE
  "CMakeFiles/dist_tests.dir/dist/async_regression_test.cc.o"
  "CMakeFiles/dist_tests.dir/dist/async_regression_test.cc.o.d"
  "CMakeFiles/dist_tests.dir/dist/cluster_test.cc.o"
  "CMakeFiles/dist_tests.dir/dist/cluster_test.cc.o.d"
  "CMakeFiles/dist_tests.dir/dist/ps_sharded_test.cc.o"
  "CMakeFiles/dist_tests.dir/dist/ps_sharded_test.cc.o.d"
  "CMakeFiles/dist_tests.dir/dist/strategies_test.cc.o"
  "CMakeFiles/dist_tests.dir/dist/strategies_test.cc.o.d"
  "CMakeFiles/dist_tests.dir/dist/timing_test.cc.o"
  "CMakeFiles/dist_tests.dir/dist/timing_test.cc.o.d"
  "CMakeFiles/dist_tests.dir/dist/transport_test.cc.o"
  "CMakeFiles/dist_tests.dir/dist/transport_test.cc.o.d"
  "dist_tests"
  "dist_tests.pdb"
  "dist_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dist_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
